package tenancy

import (
	"errors"
	"testing"

	"artmem/internal/memsim"
)

// TestArbiterPerBoundaryBudgetsIndependent pins the per-boundary
// admission split (ISSUE 10): with Boundaries=3, spending one
// boundary's promotion budget to exhaustion must not consume any other
// boundary's — each tier edge is its own migration link.
func TestArbiterPerBoundaryBudgetsIndependent(t *testing.T) {
	a := newArbiter(testMachine(), 2, ArbiterConfig{
		Mode: ModeOff, Admission: true,
		BandwidthPagesPerPeriod: 4, Boundaries: 3,
	})
	a.addTenant(0, 1, ClassBatch)
	a.addTenant(1, 1, ClassBatch)
	if a.Boundaries() != 3 {
		t.Fatalf("Boundaries() = %d, want 3", a.Boundaries())
	}

	// Tenant 0's split is 4*1/2 = 2 per boundary. Drain boundary 1.
	for i := 0; i < 2; i++ {
		if err := a.admitPromotion(0, 1); err != nil {
			t.Fatalf("boundary 1 admit %d: %v", i, err)
		}
	}
	// Its own boundary-1 budget is spent (a batch tenant cannot draw on
	// the pool alone), so boundary 1 denies tenant 0 — while tenant 1's
	// boundary-1 budget is untouched.
	if err := a.admitPromotion(0, 1); !errors.Is(err, memsim.ErrTierFull) {
		t.Fatalf("boundary 1 exhausted admit: %v, want ErrTierFull via ErrAdmissionDenied", err)
	}
	if err := a.admitPromotion(1, 1); err != nil {
		t.Fatalf("tenant 1 boundary 1 admit: %v", err)
	}

	// Boundaries 0 and 2 are untouched: full budget remains for both
	// tenants.
	for _, bd := range []int{0, 2} {
		if got := a.BudgetRemaining(0, bd); got != 2 {
			t.Errorf("boundary %d remaining = %d, want 2", bd, got)
		}
		if err := a.admitPromotion(1, bd); err != nil {
			t.Errorf("tenant 1 boundary %d admit: %v", bd, err)
		}
	}

	// A period refill restores every boundary.
	a.beginPeriod()
	for bd := 0; bd < 3; bd++ {
		if got := a.BudgetRemaining(0, bd); got != 2 {
			t.Errorf("post-refill boundary %d remaining = %d, want 2", bd, got)
		}
	}
}

// TestArbiterLatencyPreemptsPerBoundary: a latency tenant's preemption
// of the batch pool is scoped to the boundary it promotes across.
func TestArbiterLatencyPreemptsPerBoundary(t *testing.T) {
	a := newArbiter(testMachine(), 2, ArbiterConfig{
		Mode: ModeOff, Admission: true,
		BandwidthPagesPerPeriod: 2, Boundaries: 2,
	})
	a.addTenant(0, 1, ClassLatency)
	a.addTenant(1, 1, ClassBatch)

	// Latency tenant spends its own boundary-0 budget (1), then preempts
	// the batch pool (1), then is denied — all on boundary 0.
	for i := 0; i < 2; i++ {
		if err := a.admitPromotion(0, 0); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	if err := a.admitPromotion(0, 0); !errors.Is(err, ErrAdmissionDenied) {
		t.Fatalf("boundary 0 should be exhausted: %v", err)
	}
	if a.Preemptions(0) != 1 {
		t.Fatalf("preemptions = %d, want 1", a.Preemptions(0))
	}
	// Boundary 1's batch pool is untouched: the batch tenant still
	// promotes there.
	if err := a.admitPromotion(1, 1); err != nil {
		t.Fatalf("batch tenant on boundary 1: %v", err)
	}
}

// TestArbiterDefaultSingleBoundary pins the compatibility contract: a
// zero Boundaries config is one boundary, and the legacy single-budget
// arithmetic is unchanged.
func TestArbiterDefaultSingleBoundary(t *testing.T) {
	a := newArbiter(testMachine(), 1, ArbiterConfig{
		Mode: ModeOff, Admission: true, BandwidthPagesPerPeriod: 3,
	})
	a.addTenant(0, 1, ClassBatch)
	if a.Boundaries() != 1 {
		t.Fatalf("Boundaries() = %d, want 1", a.Boundaries())
	}
	admitted := 0
	for a.admitPromotion(0, 0) == nil {
		admitted++
		if admitted > 10 {
			t.Fatal("budget never exhausted")
		}
	}
	if admitted != 3 {
		t.Errorf("admitted %d promotions, want 3 (the period budget)", admitted)
	}
}
