package tenancy

import (
	"fmt"

	"artmem/internal/memsim"
)

// Mode selects how the arbiter partitions the fast tier.
type Mode int

const (
	// ModeOff disables quotas entirely: tenants contend for the fast
	// tier with no accounting — the fairness experiment's baseline.
	ModeOff Mode = iota
	// ModeStatic partitions the fast tier by tenant weight once, at
	// construction.
	ModeStatic
	// ModeDynamic starts from the static split and periodically moves
	// quota from the tenant with the highest windowed hit ratio to the
	// one with the lowest — descending the hit-ratio gradient toward
	// equalized service.
	ModeDynamic
)

// String returns "off", "static", or "dynamic".
func (m Mode) String() string {
	switch m {
	case ModeStatic:
		return "static"
	case ModeDynamic:
		return "dynamic"
	default:
		return "off"
	}
}

// ArbiterConfig parameterizes the fast-tier arbiter.
type ArbiterConfig struct {
	// Mode selects the quota policy (default ModeOff).
	Mode Mode
	// Admission enables TierBPF-style migration admission control:
	// each control period every tenant gets a promotion budget
	// proportional to its weight, carved from the shared migration
	// bandwidth; promotions past the budget are denied with
	// ErrAdmissionDenied. Demotions are never denied — reclaim must
	// not block.
	Admission bool
	// BandwidthPagesPerPeriod is the shared per-period promotion
	// budget split between tenants by weight; 0 derives fastCap/8+1.
	BandwidthPagesPerPeriod int
	// RebalancePeriods is how many control periods elapse between
	// dynamic rebalances; 0 uses 8.
	RebalancePeriods int
	// QuotaStepFrac is the quota moved per rebalance as a fraction of
	// fast-tier capacity; 0 uses 1/64.
	QuotaStepFrac float64
	// MinQuotaFrac floors every tenant's quota at this fraction of its
	// static share, so dynamic mode can never starve a tenant; 0 uses
	// 0.25.
	MinQuotaFrac float64
	// DeadbandHitRatio suppresses rebalances when the windowed
	// hit-ratio spread is below this; 0 uses 0.05.
	DeadbandHitRatio float64
}

func (c *ArbiterConfig) defaults(fastCap int) {
	if c.BandwidthPagesPerPeriod == 0 {
		c.BandwidthPagesPerPeriod = fastCap/8 + 1
	}
	if c.RebalancePeriods == 0 {
		c.RebalancePeriods = 8
	}
	if c.QuotaStepFrac == 0 {
		c.QuotaStepFrac = 1.0 / 64
	}
	if c.MinQuotaFrac == 0 {
		c.MinQuotaFrac = 0.25
	}
	if c.DeadbandHitRatio == 0 {
		c.DeadbandHitRatio = 0.05
	}
}

// ErrAdmissionDenied is returned by a TenantView's MovePage when the
// arbiter's per-period promotion budget for the tenant is exhausted.
// It wraps memsim.ErrTierFull so policies treat a denial like a full
// tier: stop promoting this period and try again next period.
var ErrAdmissionDenied = fmt.Errorf("tenancy: promotion denied by admission control: %w", memsim.ErrTierFull)

// Arbiter partitions the fast tier between tenants and meters their
// promotion traffic. All methods must be called from the single
// control-loop thread (or under the runtime's lock).
type Arbiter struct {
	cfg     ArbiterConfig
	m       *memsim.Machine
	weights []int
	sumW    int
	// staticQuota is the weight-proportional split of the fast tier;
	// quota is the live assignment (equal to staticQuota until dynamic
	// mode moves shares around). Zero-valued in ModeOff.
	staticQuota []int
	quota       []int
	budget      []int
	denials     []uint64
	rebalances  uint64
	periods     int
	// Windowed hit-ratio state for dynamic mode and reporting.
	prevFast, prevSlow []uint64
	window             []float64
}

func newArbiter(m *memsim.Machine, weights []int, cfg ArbiterConfig) *Arbiter {
	fastCap := m.CapacityPages(memsim.Fast)
	cfg.defaults(fastCap)
	n := len(weights)
	a := &Arbiter{
		cfg:         cfg,
		m:           m,
		weights:     weights,
		staticQuota: make([]int, n),
		quota:       make([]int, n),
		budget:      make([]int, n),
		denials:     make([]uint64, n),
		prevFast:    make([]uint64, n),
		prevSlow:    make([]uint64, n),
		window:      make([]float64, n),
	}
	for _, w := range weights {
		a.sumW += w
	}
	if cfg.Mode != ModeOff {
		// Weighted shares with the integer-division remainder dealt out
		// round-robin so the quotas sum exactly to capacity (a floor
		// split would strand pages no tenant may use).
		assigned := 0
		for i, w := range weights {
			a.staticQuota[i] = fastCap * w / a.sumW
			if a.staticQuota[i] < 1 {
				a.staticQuota[i] = 1
			}
			assigned += a.staticQuota[i]
		}
		for i := 0; assigned < fastCap; i = (i + 1) % n {
			a.staticQuota[i]++
			assigned++
		}
		for i := range a.quota {
			a.quota[i] = a.staticQuota[i]
			m.SetFastQuota(memsim.TenantID(i), a.quota[i])
		}
	}
	a.refillBudgets()
	return a
}

func (a *Arbiter) refillBudgets() {
	for i, w := range a.weights {
		b := a.cfg.BandwidthPagesPerPeriod * w / a.sumW
		if b < 1 {
			b = 1
		}
		a.budget[i] = b
	}
}

// beginPeriod refills admission budgets and runs a dynamic rebalance
// when one is due.
func (a *Arbiter) beginPeriod() {
	a.periods++
	a.refillBudgets()
	if a.cfg.Mode == ModeDynamic && a.periods%a.cfg.RebalancePeriods == 0 {
		a.rebalance()
	}
}

// admitPromotion consumes one unit of the tenant's promotion budget,
// or denies the promotion when it is spent.
func (a *Arbiter) admitPromotion(id memsim.TenantID) error {
	if !a.cfg.Admission {
		return nil
	}
	if a.budget[id] <= 0 {
		a.denials[id]++
		return ErrAdmissionDenied
	}
	a.budget[id]--
	return nil
}

// rebalance moves one quota step from the tenant with the highest
// windowed hit ratio to the one with the lowest. Ties break toward
// the lowest tenant index, deterministically. Tenants with no window
// traffic are skipped (an idle tenant's ratio says nothing).
func (a *Arbiter) rebalance() {
	donor, receiver := -1, -1
	for i := range a.weights {
		c := a.m.TenantCounters(memsim.TenantID(i))
		df := c.FastAccesses - a.prevFast[i]
		ds := c.SlowAccesses - a.prevSlow[i]
		a.prevFast[i], a.prevSlow[i] = c.FastAccesses, c.SlowAccesses
		if df+ds == 0 {
			a.window[i] = -1
			continue
		}
		a.window[i] = float64(df) / float64(df+ds)
		if donor < 0 || a.window[i] > a.window[donor] {
			donor = i
		}
		if receiver < 0 || a.window[i] < a.window[receiver] {
			receiver = i
		}
	}
	if donor < 0 || receiver < 0 || donor == receiver {
		return
	}
	if a.window[donor]-a.window[receiver] < a.cfg.DeadbandHitRatio {
		return
	}
	step := int(a.cfg.QuotaStepFrac * float64(a.m.CapacityPages(memsim.Fast)))
	if step < 1 {
		step = 1
	}
	floor := int(a.cfg.MinQuotaFrac * float64(a.staticQuota[donor]))
	if floor < 1 {
		floor = 1
	}
	if a.quota[donor]-step < floor {
		step = a.quota[donor] - floor
	}
	if step <= 0 {
		return
	}
	a.quota[donor] -= step
	a.quota[receiver] += step
	a.m.SetFastQuota(memsim.TenantID(donor), a.quota[donor])
	a.m.SetFastQuota(memsim.TenantID(receiver), a.quota[receiver])
	a.rebalances++
}

// Mode returns the arbiter's quota mode.
func (a *Arbiter) Mode() Mode { return a.cfg.Mode }

// AdmissionEnabled reports whether admission control is on.
func (a *Arbiter) AdmissionEnabled() bool { return a.cfg.Admission }

// Quota returns tenant i's current fast-tier quota in pages (0 in
// ModeOff: unlimited).
func (a *Arbiter) Quota(i int) int { return a.quota[i] }

// Denials returns how many promotions of tenant i admission control
// has denied.
func (a *Arbiter) Denials(i int) uint64 { return a.denials[i] }

// Rebalances returns how many dynamic quota rebalances have executed.
func (a *Arbiter) Rebalances() uint64 { return a.rebalances }

// WindowHitRatio returns tenant i's hit ratio over the last rebalance
// window, or -1 when the tenant had no traffic (or none has elapsed).
func (a *Arbiter) WindowHitRatio(i int) float64 { return a.window[i] }
