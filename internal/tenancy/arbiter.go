package tenancy

import (
	"fmt"

	"artmem/internal/memsim"
)

// Mode selects how the arbiter partitions the fast tier.
type Mode int

const (
	// ModeOff disables quotas entirely: tenants contend for the fast
	// tier with no accounting — the fairness experiment's baseline.
	ModeOff Mode = iota
	// ModeStatic partitions the fast tier by tenant weight once per
	// membership change.
	ModeStatic
	// ModeDynamic starts from the static split and periodically moves
	// quota from the tenant with the highest windowed hit ratio to the
	// one with the lowest — descending the hit-ratio gradient toward
	// equalized service.
	ModeDynamic
)

// String returns "off", "static", or "dynamic".
func (m Mode) String() string {
	switch m {
	case ModeStatic:
		return "static"
	case ModeDynamic:
		return "dynamic"
	default:
		return "off"
	}
}

// ArbiterConfig parameterizes the fast-tier arbiter.
type ArbiterConfig struct {
	// Mode selects the quota policy (default ModeOff).
	Mode Mode
	// Admission enables TierBPF-style migration admission control:
	// each control period every tenant gets a promotion budget
	// proportional to its weight, carved from the shared migration
	// bandwidth; promotions past the budget are denied with
	// ErrAdmissionDenied. Latency-SLO tenants may additionally preempt
	// the batch tenants' pooled budget (see SLOClass). Demotions are
	// never denied — reclaim must not block.
	Admission bool
	// BandwidthPagesPerPeriod is the shared per-period promotion
	// budget split between tenants by weight; 0 derives fastCap/8+1.
	BandwidthPagesPerPeriod int
	// RebalancePeriods is how many control periods elapse between
	// dynamic rebalances; 0 uses 8.
	RebalancePeriods int
	// QuotaStepFrac is the quota moved per rebalance as a fraction of
	// fast-tier capacity; 0 uses 1/64.
	QuotaStepFrac float64
	// MinQuotaFrac floors every tenant's quota at this fraction of its
	// static share, so dynamic mode can never starve a tenant; 0 uses
	// 0.25.
	MinQuotaFrac float64
	// DeadbandHitRatio suppresses rebalances when the windowed
	// hit-ratio spread is below this; 0 uses 0.05.
	DeadbandHitRatio float64
	// MaxArrivalsPerPeriod caps tenant registrations admitted per
	// control period — backpressure that keeps an arrival burst from
	// stampeding the plane. Excess registrations fail with
	// ErrRegistrationThrottled and may be retried next period; 0 means
	// unlimited.
	MaxArrivalsPerPeriod int
	// LatencyQuotaBoost multiplies a latency-SLO tenant's weight in the
	// quota and budget splits, so latency tenants claim a larger
	// fast-tier share (and promotion budget) than batch tenants of the
	// same configured weight. 0 or 1 means no boost — with no latency
	// tenants, or at boost 1, behaviour is identical to plain weighted
	// splits.
	LatencyQuotaBoost int
	// Boundaries is how many tier boundaries the admission budgets
	// meter independently — an N-tier chain has N-1, each with its own
	// per-tenant promotion budget and batch pool, so saturating the
	// PM→CXL edge does not starve DRAM promotions. 0 or 1 is the
	// two-tier machine: a single boundary, bit-identical to the legacy
	// arbiter.
	Boundaries int
}

func (c *ArbiterConfig) defaults(fastCap int) {
	if c.BandwidthPagesPerPeriod == 0 {
		c.BandwidthPagesPerPeriod = fastCap/8 + 1
	}
	if c.RebalancePeriods == 0 {
		c.RebalancePeriods = 8
	}
	if c.QuotaStepFrac == 0 {
		c.QuotaStepFrac = 1.0 / 64
	}
	if c.MinQuotaFrac == 0 {
		c.MinQuotaFrac = 0.25
	}
	if c.DeadbandHitRatio == 0 {
		c.DeadbandHitRatio = 0.05
	}
	if c.LatencyQuotaBoost < 1 {
		c.LatencyQuotaBoost = 1
	}
	if c.Boundaries < 1 {
		c.Boundaries = 1
	}
}

// ErrAdmissionDenied is returned by a TenantView's MovePage when the
// arbiter's per-period promotion budget for the tenant is exhausted.
// It wraps memsim.ErrTierFull so policies treat a denial like a full
// tier: stop promoting this period and try again next period.
var ErrAdmissionDenied = fmt.Errorf("tenancy: promotion denied by admission control: %w", memsim.ErrTierFull)

// Arbiter partitions the fast tier between the plane's *active* tenants
// and meters their promotion traffic. Every per-period pass (budget
// refill, dynamic rebalance) walks only the active slot list, so the
// period cost is O(active tenants) regardless of plane capacity — the
// property that keeps a 1000-tenant plane from stalling the migration
// thread. All methods must be called from the single control-loop
// thread (or under the runtime's lock).
type Arbiter struct {
	cfg ArbiterConfig
	m   *memsim.Machine

	// Per-slot state, indexed by slot id (== memsim.TenantID). Slots
	// enter via addTenant and leave via removeTenant as tenants
	// register and deregister.
	weights  []int
	classes  []SLOClass
	isActive []bool
	active   []int // active slot ids, ascending
	sumW     int

	// staticQuota is the weight-proportional split of the fast tier
	// across the active set; quota is the live assignment (equal to
	// staticQuota until dynamic mode moves shares around). Zero-valued
	// in ModeOff. Membership changes recompute the split from scratch,
	// which deliberately resets dynamic drift: the gradient observed
	// against the old tenant set says nothing about the new one.
	staticQuota []int
	quota       []int

	// Per-period promotion budgets, indexed [slot][boundary]: each tier
	// boundary is metered independently (two-tier machines have exactly
	// one). batchPool aggregates the batch tenants' budgets per boundary
	// so a latency-SLO tenant can preempt batch bandwidth in O(1): batch
	// promotions draw from their own budget AND the pool, latency
	// promotions fall back to the pool once their own budget is spent.
	// With no latency tenants the pool can never bind before the
	// individual budgets do, so behaviour is identical to plain
	// per-tenant budgets.
	budget    [][]int
	batchPool []int

	denials     []uint64
	preemptions []uint64
	rebalances  uint64
	periods     int

	// Windowed hit-ratio state for dynamic mode and reporting.
	prevFast, prevSlow []uint64
	window             []float64
}

// newArbiter returns an empty arbiter over `capacity` slots; tenants
// join via addTenant.
func newArbiter(m *memsim.Machine, capacity int, cfg ArbiterConfig) *Arbiter {
	cfg.defaults(m.CapacityPages(memsim.Fast))
	budget := make([][]int, capacity)
	for i := range budget {
		budget[i] = make([]int, cfg.Boundaries)
	}
	return &Arbiter{
		cfg:         cfg,
		m:           m,
		weights:     make([]int, capacity),
		classes:     make([]SLOClass, capacity),
		isActive:    make([]bool, capacity),
		staticQuota: make([]int, capacity),
		quota:       make([]int, capacity),
		budget:      budget,
		batchPool:   make([]int, cfg.Boundaries),
		denials:     make([]uint64, capacity),
		preemptions: make([]uint64, capacity),
		prevFast:    make([]uint64, capacity),
		prevSlow:    make([]uint64, capacity),
		window:      make([]float64, capacity),
	}
}

// addTenant activates a slot. Quotas and budgets are recomputed over
// the new active set; the slot's hit-ratio window baseline starts at
// its current counters (zero for a fresh or reset tenant).
func (a *Arbiter) addTenant(slot, weight int, class SLOClass) {
	a.weights[slot] = weight
	a.classes[slot] = class
	a.isActive[slot] = true
	a.insertActive(slot)
	a.sumW += a.effWeight(slot)
	// A recycled slot's admission counters restart with its new tenant.
	a.denials[slot] = 0
	a.preemptions[slot] = 0
	c := a.m.TenantCounters(memsim.TenantID(slot))
	a.prevFast[slot], a.prevSlow[slot] = c.FastAccesses, c.SlowAccesses
	a.window[slot] = -1
	a.recomputeQuotas()
	a.refillBudgets()
}

// removeTenant deactivates a slot and redistributes its quota over the
// remaining active set.
func (a *Arbiter) removeTenant(slot int) {
	if !a.isActive[slot] {
		return
	}
	a.isActive[slot] = false
	a.sumW -= a.effWeight(slot)
	a.weights[slot] = 0
	a.classes[slot] = ClassBatch
	for b := range a.budget[slot] {
		a.budget[slot][b] = 0
	}
	a.staticQuota[slot] = 0
	a.quota[slot] = 0
	a.window[slot] = -1
	for i, s := range a.active {
		if s == slot {
			a.active = append(a.active[:i], a.active[i+1:]...)
			break
		}
	}
	a.recomputeQuotas()
	a.refillBudgets()
}

// effWeight is slot's weight in the quota/budget splits: the configured
// weight, boosted for latency-SLO tenants.
func (a *Arbiter) effWeight(slot int) int {
	w := a.weights[slot]
	if a.classes[slot] == ClassLatency {
		w *= a.cfg.LatencyQuotaBoost
	}
	return w
}

func (a *Arbiter) insertActive(slot int) {
	i := len(a.active)
	for i > 0 && a.active[i-1] > slot {
		i--
	}
	a.active = append(a.active, 0)
	copy(a.active[i+1:], a.active[i:])
	a.active[i] = slot
}

// recomputeQuotas rebuilds the weighted static split over the active
// set: weighted shares with the integer-division remainder dealt out
// round-robin so the quotas sum exactly to capacity (a floor split
// would strand pages no tenant may use). When the active set is larger
// than the fast tier the per-tenant floor of one page wins and the sum
// exceeds capacity — physical capacity still gates allocation, quotas
// only cap individual tenants.
func (a *Arbiter) recomputeQuotas() {
	if a.cfg.Mode == ModeOff {
		return
	}
	n := len(a.active)
	if n == 0 {
		return
	}
	fastCap := a.m.CapacityPages(memsim.Fast)
	assigned := 0
	for _, s := range a.active {
		q := fastCap * a.effWeight(s) / a.sumW
		if q < 1 {
			q = 1
		}
		a.staticQuota[s] = q
		assigned += q
	}
	for i := 0; assigned < fastCap; i = (i + 1) % n {
		a.staticQuota[a.active[i]]++
		assigned++
	}
	for _, s := range a.active {
		a.quota[s] = a.staticQuota[s]
		a.m.SetFastQuota(memsim.TenantID(s), a.quota[s])
	}
}

// refillBudgets resets every boundary's per-tenant budgets and batch
// pool to the weighted split. Each boundary gets the full
// BandwidthPagesPerPeriod: the budget models each boundary's own
// migration link, not one shared pipe.
func (a *Arbiter) refillBudgets() {
	for bd := range a.batchPool {
		a.batchPool[bd] = 0
	}
	for _, s := range a.active {
		b := a.cfg.BandwidthPagesPerPeriod * a.effWeight(s) / a.sumW
		if b < 1 {
			b = 1
		}
		for bd := range a.budget[s] {
			a.budget[s][bd] = b
			if a.classes[s] == ClassBatch {
				a.batchPool[bd] += b
			}
		}
	}
}

// beginPeriod refills admission budgets and runs a dynamic rebalance
// when one is due. O(active tenants).
func (a *Arbiter) beginPeriod() {
	a.periods++
	a.refillBudgets()
	if a.cfg.Mode == ModeDynamic && a.periods%a.cfg.RebalancePeriods == 0 {
		a.rebalance()
	}
}

// admitPromotion consumes one unit of the tenant's promotion budget on
// the given tier boundary (0 on a two-tier machine), or denies the
// promotion when it is spent. A latency-SLO tenant whose own budget is
// spent preempts the batch tenants' pooled budget on that boundary; a
// batch tenant needs both its own budget and pool headroom, so a
// preempted batch tenant degrades to "denied this period" (the same
// graceful ErrTierFull path policies already handle) instead of
// erroring. Promotions for inactive (draining or empty) slots are
// always denied: a departing tenant must not grow its resident set.
func (a *Arbiter) admitPromotion(id memsim.TenantID, boundary int) error {
	i := int(id)
	if !a.isActive[i] {
		a.denials[i]++
		return ErrAdmissionDenied
	}
	if !a.cfg.Admission {
		return nil
	}
	if a.classes[i] == ClassLatency {
		if a.budget[i][boundary] > 0 {
			a.budget[i][boundary]--
			return nil
		}
		if a.batchPool[boundary] > 0 {
			a.batchPool[boundary]--
			a.preemptions[i]++
			return nil
		}
	} else if a.budget[i][boundary] > 0 && a.batchPool[boundary] > 0 {
		a.budget[i][boundary]--
		a.batchPool[boundary]--
		return nil
	}
	a.denials[i]++
	return ErrAdmissionDenied
}

// rebalance moves one quota step from the active tenant with the
// highest windowed hit ratio to the one with the lowest. Ties break
// toward the lowest slot id, deterministically. Tenants with no window
// traffic are skipped (an idle tenant's ratio says nothing). One
// O(active) pass.
func (a *Arbiter) rebalance() {
	donor, receiver := -1, -1
	for _, i := range a.active {
		c := a.m.TenantCounters(memsim.TenantID(i))
		df := c.FastAccesses - a.prevFast[i]
		ds := c.SlowAccesses - a.prevSlow[i]
		a.prevFast[i], a.prevSlow[i] = c.FastAccesses, c.SlowAccesses
		if df+ds == 0 {
			a.window[i] = -1
			continue
		}
		a.window[i] = float64(df) / float64(df+ds)
		if donor < 0 || a.window[i] > a.window[donor] {
			donor = i
		}
		if receiver < 0 || a.window[i] < a.window[receiver] {
			receiver = i
		}
	}
	if donor < 0 || receiver < 0 || donor == receiver {
		return
	}
	if a.window[donor]-a.window[receiver] < a.cfg.DeadbandHitRatio {
		return
	}
	step := int(a.cfg.QuotaStepFrac * float64(a.m.CapacityPages(memsim.Fast)))
	if step < 1 {
		step = 1
	}
	floor := int(a.cfg.MinQuotaFrac * float64(a.staticQuota[donor]))
	if floor < 1 {
		floor = 1
	}
	if a.quota[donor]-step < floor {
		step = a.quota[donor] - floor
	}
	if step <= 0 {
		return
	}
	a.quota[donor] -= step
	a.quota[receiver] += step
	a.m.SetFastQuota(memsim.TenantID(donor), a.quota[donor])
	a.m.SetFastQuota(memsim.TenantID(receiver), a.quota[receiver])
	a.rebalances++
}

// Mode returns the arbiter's quota mode.
func (a *Arbiter) Mode() Mode { return a.cfg.Mode }

// Boundaries returns how many tier boundaries the arbiter meters
// independently (1 on a two-tier machine).
func (a *Arbiter) Boundaries() int { return a.cfg.Boundaries }

// BudgetRemaining returns slot i's unspent promotion budget on the
// given boundary this period (always 0 with admission off — nothing is
// metered, so nothing remains to spend).
func (a *Arbiter) BudgetRemaining(i, boundary int) int {
	if !a.cfg.Admission {
		return 0
	}
	return a.budget[i][boundary]
}

// AdmissionEnabled reports whether admission control is on.
func (a *Arbiter) AdmissionEnabled() bool { return a.cfg.Admission }

// Quota returns slot i's current fast-tier quota in pages (0 in
// ModeOff or for inactive slots: unlimited/none).
func (a *Arbiter) Quota(i int) int { return a.quota[i] }

// Denials returns how many promotions of slot i admission control has
// denied.
func (a *Arbiter) Denials(i int) uint64 { return a.denials[i] }

// Preemptions returns how many of slot i's promotions were admitted by
// preempting the batch tenants' pooled budget (latency-SLO slots only).
func (a *Arbiter) Preemptions(i int) uint64 { return a.preemptions[i] }

// Rebalances returns how many dynamic quota rebalances have executed.
func (a *Arbiter) Rebalances() uint64 { return a.rebalances }

// WindowHitRatio returns slot i's hit ratio over the last rebalance
// window, or -1 when the tenant had no traffic (or none has elapsed).
func (a *Arbiter) WindowHitRatio(i int) float64 { return a.window[i] }

// QuotaSum returns the sum of the active tenants' quotas — the
// invariant checked by the churn chaos suite: equal to fast-tier
// capacity whenever the active set fits (per-tenant floors can push it
// above capacity only when active tenants outnumber fast pages), and 0
// in ModeOff.
func (a *Arbiter) QuotaSum() int {
	s := 0
	for _, i := range a.active {
		s += a.quota[i]
	}
	return s
}
