package tenancy

import "errors"

// ErrorCode classifies a control-plane error into a short stable slug
// for wire protocols and JSON error payloads — the serving frontend
// maps these onto its reject codes and artmemd's /register handler
// includes them in `{"error": ..., "code": ...}` responses, so remote
// clients can distinguish "retry next period" backpressure from hard
// failures without string-matching error text.
//
//	ErrRegistrationThrottled → "throttled"   (retryable backpressure)
//	ErrReclaimInterrupted    → "reclaim_interrupted" (retryable)
//	ErrPlaneFull             → "plane_full"  (capacity; retry later)
//	ErrAdmissionDenied       → "admission_denied" (per-period budget)
//	anything else            → "error"
func ErrorCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrRegistrationThrottled):
		return "throttled"
	case errors.Is(err, ErrReclaimInterrupted):
		return "reclaim_interrupted"
	case errors.Is(err, ErrPlaneFull):
		return "plane_full"
	case errors.Is(err, ErrAdmissionDenied):
		return "admission_denied"
	}
	return "error"
}

// Retryable reports whether err is transient backpressure — the caller
// should retry next control period rather than fail hard.
func Retryable(err error) bool {
	switch ErrorCode(err) {
	case "throttled", "reclaim_interrupted", "admission_denied":
		return true
	}
	return false
}
