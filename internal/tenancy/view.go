package tenancy

import (
	"artmem/internal/memsim"
	"artmem/internal/telemetry"
)

// TenantView is one tenant's scoped window onto the shared machine. It
// implements memsim.Env, so any Env-attaching policy (core.ArtMem via
// AttachEnv, every policies baseline via EnvPolicy) runs against it
// unmodified while seeing only the tenant's world:
//
//   - Allocated reports only pages the tenant owns, which scopes every
//     page-scanning policy loop to the tenant's resident set;
//   - Fast-tier capacity and free space reflect the tenant's arbiter
//     quota, not the whole machine;
//   - MovePage promotions pass through the arbiter's admission control
//     and quota (denials wrap memsim.ErrTierFull, which policies
//     already treat as "stop this period");
//   - hook installation registers with the plane's demux, so the
//     policy's sampler and fault handler receive only events on the
//     tenant's pages;
//   - Counters reports the tenant's slice of the machine counters.
type TenantView struct {
	plane *Plane
	m     *memsim.Machine
	id    memsim.TenantID
}

var _ memsim.Env = (*TenantView)(nil)

// ID returns the tenant's identifier.
func (v *TenantView) ID() memsim.TenantID { return v.id }

// Config implements memsim.Env.
func (v *TenantView) Config() memsim.Config { return v.m.Config() }

// NumPages implements memsim.Env: the machine's full page space (page
// IDs are global; ownership, not index range, scopes the tenant).
func (v *TenantView) NumPages() int { return v.m.NumPages() }

// PageSize implements memsim.Env.
func (v *TenantView) PageSize() int64 { return v.m.PageSize() }

// Now implements memsim.Env.
func (v *TenantView) Now() int64 { return v.m.Now() }

// Counters implements memsim.Env: the tenant's share of the machine
// counters (Migrations is the tenant's promotions + demotions).
func (v *TenantView) Counters() memsim.Counters {
	tc := v.m.TenantCounters(v.id)
	return memsim.Counters{
		FastAccesses: tc.FastAccesses,
		SlowAccesses: tc.SlowAccesses,
		CacheHits:    tc.CacheHits,
		Migrations:   tc.Promotions + tc.Demotions,
		Promotions:   tc.Promotions,
		Demotions:    tc.Demotions,
		MigratedBytes: (tc.Promotions + tc.Demotions) *
			uint64(v.m.PageSize()),
		Faults:    tc.Faults,
		AllocFast: tc.AllocFast,
		AllocSlow: tc.AllocSlow,
	}
}

// TierOf implements memsim.Env.
func (v *TenantView) TierOf(p memsim.PageID) memsim.TierID { return v.m.TierOf(p) }

// Allocated implements memsim.Env, scoped to ownership: a page another
// tenant owns reads as unallocated, which keeps every "skip
// unallocated pages" policy loop inside the tenant's resident set.
func (v *TenantView) Allocated(p memsim.PageID) bool {
	return v.m.Allocated(p) && v.m.OwnerOf(p) == v.id
}

// UsedPages implements memsim.Env: the tenant's resident pages.
func (v *TenantView) UsedPages(t memsim.TierID) int {
	return v.m.TenantUsedPages(v.id, t)
}

// FreePages implements memsim.Env. For the fast tier it is the
// headroom under both the tenant's quota and the machine's physical
// capacity; the slow tier is shared.
func (v *TenantView) FreePages(t memsim.TierID) int {
	free := v.m.FreePages(t)
	if t != memsim.Fast {
		return free
	}
	if q := v.m.FastQuota(v.id); q > 0 {
		if headroom := q - v.m.TenantUsedPages(v.id, memsim.Fast); headroom < free {
			free = headroom
		}
	}
	if free < 0 {
		// Over quota after a dynamic shrink: no headroom, not negative.
		free = 0
	}
	return free
}

// CapacityPages implements memsim.Env: the tenant's quota for the fast
// tier when one is set, the machine capacity otherwise.
func (v *TenantView) CapacityPages(t memsim.TierID) int {
	if t == memsim.Fast {
		if q := v.m.FastQuota(v.id); q > 0 {
			return q
		}
	}
	return v.m.CapacityPages(t)
}

// MovePage implements memsim.Env. Promotions pass through the
// arbiter's admission control first; a page the tenant does not own
// cannot be migrated and reports memsim.ErrNotAllocated.
func (v *TenantView) MovePage(p memsim.PageID, dst memsim.TierID) error {
	if err := v.admit(p, dst); err != nil {
		return err
	}
	return v.m.MovePage(p, dst)
}

// MovePageSync implements memsim.Env; admission as MovePage.
func (v *TenantView) MovePageSync(p memsim.PageID, dst memsim.TierID) error {
	if err := v.admit(p, dst); err != nil {
		return err
	}
	return v.m.MovePageSync(p, dst)
}

func (v *TenantView) admit(p memsim.PageID, dst memsim.TierID) error {
	if v.m.OwnerOf(p) != v.id || !v.m.Allocated(p) {
		return memsim.ErrNotAllocated
	}
	if dst == memsim.Fast {
		// The tenant plane runs on two-tier machines, so every promotion
		// crosses boundary 0; chain planes would map dst to its boundary.
		return v.plane.arb.admitPromotion(v.id, 0)
	}
	return nil
}

// ChargeBackground implements memsim.Env.
func (v *TenantView) ChargeBackground(ns float64) { v.m.ChargeBackground(ns) }

// TestAndClearAccessed implements memsim.Env. Callers reach pages via
// Allocated or their tenant-scoped LRU lists, so the bit they clear is
// always their own page's.
func (v *TenantView) TestAndClearAccessed(p memsim.PageID) bool {
	return v.m.TestAndClearAccessed(p)
}

// PoisonPage implements memsim.Env: arms only pages the tenant owns.
func (v *TenantView) PoisonPage(p memsim.PageID) {
	if v.m.Allocated(p) && v.m.OwnerOf(p) == v.id {
		v.m.PoisonPage(p)
	}
}

// PoisonRange implements memsim.Env: walks the same wrapping window as
// the machine's PoisonRange but arms only the tenant's pages, so a
// fault-driven tenant policy never faults another tenant's accesses.
// The cursor advances over the full window regardless, preserving the
// scanner's coverage cadence.
func (v *TenantView) PoisonRange(start memsim.PageID, n int) memsim.PageID {
	p := uint64(start)
	np := uint64(v.m.NumPages())
	for i := 0; i < n; i++ {
		pid := memsim.PageID(p % np)
		if v.m.Allocated(pid) && v.m.OwnerOf(pid) == v.id {
			v.m.PoisonPage(pid)
		}
		p++
	}
	return memsim.PageID(p % np)
}

// SetSampler implements memsim.Env: registers with the demux so the
// sampler sees only the tenant's cache misses.
func (v *TenantView) SetSampler(s memsim.Sampler) { v.plane.dx.samplers[v.id] = s }

// SetFaultHandler implements memsim.Env: registers with the demux.
func (v *TenantView) SetFaultHandler(h memsim.FaultHandler) { v.plane.dx.faults[v.id] = h }

// SetAllocHook implements memsim.Env: registers with the demux; the
// hook fires for first touches of the tenant's pages only.
func (v *TenantView) SetAllocHook(h func(memsim.PageID, memsim.TierID)) {
	v.plane.dx.allocs[v.id] = h
}

// SetPageTrace implements memsim.Env as a no-op: page-lifecycle
// tracing is a machine-wide facility configured on the machine by the
// runtime, not per tenant.
func (v *TenantView) SetPageTrace(pt *telemetry.PageTrace) {}

// FaultInjector implements memsim.Env: the machine's chaos injector is
// shared — injected infrastructure faults hit every tenant.
func (v *TenantView) FaultInjector() memsim.FaultInjector { return v.m.FaultInjector() }
