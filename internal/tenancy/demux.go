package tenancy

import "artmem/internal/memsim"

// demux is the single machine-level hook set that fans signal streams
// out to the tenants. The machine sees one sampler, one fault handler,
// and one alloc hook; the demux routes every event to the handler
// registered by the owning tenant's policy — the analogue of the
// kernel delivering PEBS records and hint faults to the memcg that
// owns the page. Tenants with no registered handler drop their events
// (a tenant running a fault-driven policy has no sampler, and vice
// versa).
type demux struct {
	m        *memsim.Machine
	samplers []memsim.Sampler
	faults   []memsim.FaultHandler
	allocs   []func(memsim.PageID, memsim.TierID)
}

func newDemux(m *memsim.Machine, n int) *demux {
	return &demux{
		m:        m,
		samplers: make([]memsim.Sampler, n),
		faults:   make([]memsim.FaultHandler, n),
		allocs:   make([]func(memsim.PageID, memsim.TierID), n),
	}
}

// clear drops slot i's registered handlers — a departing tenant's
// policy must stop receiving signals the moment it leaves the plane.
func (d *demux) clear(i int) {
	d.samplers[i] = nil
	d.faults[i] = nil
	d.allocs[i] = nil
}

// OnMiss implements memsim.Sampler: route by page owner.
func (d *demux) OnMiss(p memsim.PageID, t memsim.TierID, write bool, now int64) {
	if s := d.samplers[d.m.OwnerOf(p)]; s != nil {
		s.OnMiss(p, t, write, now)
	}
}

// OnFault implements memsim.FaultHandler: route by page owner.
func (d *demux) OnFault(p memsim.PageID, t memsim.TierID, write bool, now int64) {
	if h := d.faults[d.m.OwnerOf(p)]; h != nil {
		h.OnFault(p, t, write, now)
	}
}

// onAlloc is the machine's first-touch hook: the page's owner is the
// current tenant, set by memsim.allocate just before this fires.
func (d *demux) onAlloc(p memsim.PageID, t memsim.TierID) {
	if h := d.allocs[d.m.OwnerOf(p)]; h != nil {
		h(p, t)
	}
}
