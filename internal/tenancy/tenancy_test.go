package tenancy

import (
	"errors"
	"reflect"
	"testing"

	"artmem/internal/memsim"
)

// testMachine builds a 64-page machine (16 fast) with no CPU cache, so
// every access is a sampled miss.
func testMachine() *memsim.Machine {
	const ps = 64 * 1024
	cfg := memsim.DefaultConfig(64*ps, 16*ps, ps)
	cfg.CacheLines = 0
	return memsim.NewMachine(cfg)
}

// touchAs first-touches n distinct pages starting at page base, charged
// to the given tenant.
func touchAs(m *memsim.Machine, id memsim.TenantID, base, n int) {
	m.SetCurrentTenant(id)
	ps := m.PageSize()
	for i := 0; i < n; i++ {
		m.Access(uint64(int64(base+i)*ps), false)
	}
}

func TestStaticQuotaSplitSumsToCapacity(t *testing.T) {
	m := testMachine()
	p := NewPlane(m, []Tenant{
		{Name: "a", Weight: 1},
		{Name: "b", Weight: 2},
		{Name: "c", Weight: 5},
	}, ArbiterConfig{Mode: ModeStatic})

	sum := 0
	for i := 0; i < p.NumTenants(); i++ {
		q := p.Arbiter().Quota(i)
		if q < 1 {
			t.Errorf("tenant %d quota = %d, want >= 1", i, q)
		}
		if got := m.FastQuota(memsim.TenantID(i)); got != q {
			t.Errorf("tenant %d machine quota %d != arbiter quota %d", i, got, q)
		}
		sum += q
	}
	if cap := m.CapacityPages(memsim.Fast); sum != cap {
		t.Errorf("quotas sum to %d, want fast capacity %d (no stranded pages)", sum, cap)
	}
	// Shares follow weight: c (weight 5) gets the largest slice.
	if !(p.Arbiter().Quota(2) > p.Arbiter().Quota(1) && p.Arbiter().Quota(1) > p.Arbiter().Quota(0)) {
		t.Errorf("quotas %d/%d/%d not ordered by weight 1/2/5",
			p.Arbiter().Quota(0), p.Arbiter().Quota(1), p.Arbiter().Quota(2))
	}
}

func TestModeOffLeavesQuotasUnlimited(t *testing.T) {
	m := testMachine()
	p := NewPlane(m, []Tenant{{Name: "a"}, {Name: "b"}}, ArbiterConfig{Mode: ModeOff})
	for i := 0; i < 2; i++ {
		if q := p.Arbiter().Quota(i); q != 0 {
			t.Errorf("tenant %d quota = %d in ModeOff, want 0 (unlimited)", i, q)
		}
	}
	if got := p.Arbiter().Mode().String(); got != "off" {
		t.Errorf("Mode = %q, want off", got)
	}
}

// recorder collects routed signal events for one tenant.
type recorder struct {
	misses []memsim.PageID
	faults []memsim.PageID
	allocs []memsim.PageID
}

func (r *recorder) OnMiss(p memsim.PageID, t memsim.TierID, w bool, now int64) {
	r.misses = append(r.misses, p)
}
func (r *recorder) OnFault(p memsim.PageID, t memsim.TierID, w bool, now int64) {
	r.faults = append(r.faults, p)
}
func (r *recorder) onAlloc(p memsim.PageID, t memsim.TierID) {
	r.allocs = append(r.allocs, p)
}

func TestDemuxRoutesSignalsByPageOwner(t *testing.T) {
	m := testMachine()
	p := NewPlane(m, []Tenant{{Name: "a"}, {Name: "b"}}, ArbiterConfig{})
	var r0, r1 recorder
	p.View(0).SetSampler(&r0)
	p.View(0).SetFaultHandler(&r0)
	p.View(0).SetAllocHook(r0.onAlloc)
	p.View(1).SetSampler(&r1)
	p.View(1).SetFaultHandler(&r1)
	p.View(1).SetAllocHook(r1.onAlloc)

	touchAs(m, 0, 0, 3)
	touchAs(m, 1, 10, 2)
	// Cross-tenant re-access: tenant 1 touching tenant 0's page must
	// still deliver the miss to tenant 0 (owner routing, not current).
	m.SetCurrentTenant(1)
	m.Access(0, false)

	if want := []memsim.PageID{0, 1, 2, 0}; !reflect.DeepEqual(r0.misses, want) {
		t.Errorf("tenant 0 misses = %v, want %v", r0.misses, want)
	}
	if want := []memsim.PageID{10, 11}; !reflect.DeepEqual(r1.misses, want) {
		t.Errorf("tenant 1 misses = %v, want %v", r1.misses, want)
	}
	if want := []memsim.PageID{0, 1, 2}; !reflect.DeepEqual(r0.allocs, want) {
		t.Errorf("tenant 0 allocs = %v, want %v", r0.allocs, want)
	}
	if want := []memsim.PageID{10, 11}; !reflect.DeepEqual(r1.allocs, want) {
		t.Errorf("tenant 1 allocs = %v, want %v", r1.allocs, want)
	}

	// PoisonRange through view 0 sweeps pages of both tenants but arms
	// only tenant 0's, so tenant 1 never sees a hint fault.
	p.View(0).PoisonRange(0, 12)
	m.SetCurrentTenant(0)
	m.Access(0, false)
	m.SetCurrentTenant(1)
	m.Access(10*uint64(m.PageSize()), false)
	if want := []memsim.PageID{0}; !reflect.DeepEqual(r0.faults, want) {
		t.Errorf("tenant 0 faults = %v, want %v", r0.faults, want)
	}
	if len(r1.faults) != 0 {
		t.Errorf("tenant 1 faults = %v, want none (foreign poison filtered)", r1.faults)
	}
}

func TestViewScopesAllocationAndMigration(t *testing.T) {
	m := testMachine()
	p := NewPlane(m, []Tenant{{Name: "a"}, {Name: "b"}}, ArbiterConfig{Mode: ModeStatic})
	touchAs(m, 0, 0, 4)
	touchAs(m, 1, 10, 4)

	v0 := p.View(0)
	if !v0.Allocated(0) {
		t.Error("own page reads unallocated")
	}
	if v0.Allocated(10) {
		t.Error("foreign page reads allocated through view")
	}
	if err := v0.MovePage(10, memsim.Slow); !errors.Is(err, memsim.ErrNotAllocated) {
		t.Errorf("migrating foreign page = %v, want ErrNotAllocated", err)
	}
	if got, want := v0.UsedPages(memsim.Fast), m.TenantUsedPages(0, memsim.Fast); got != want {
		t.Errorf("view fast pages = %d, want %d", got, want)
	}
	// Fast capacity through the view is the quota, not the machine.
	if got, want := v0.CapacityPages(memsim.Fast), p.Arbiter().Quota(0); got != want {
		t.Errorf("view fast capacity = %d, want quota %d", got, want)
	}
	if got := v0.FreePages(memsim.Fast); got != p.Arbiter().Quota(0)-v0.UsedPages(memsim.Fast) {
		t.Errorf("view fast free = %d, want quota headroom", got)
	}
	// The slow tier is shared: view reports machine free space.
	if got, want := v0.FreePages(memsim.Slow), m.FreePages(memsim.Slow); got != want {
		t.Errorf("view slow free = %d, want machine %d", got, want)
	}
}

func TestAdmissionControlDeniesOverBudgetPromotions(t *testing.T) {
	m := testMachine()
	p := NewPlane(m, []Tenant{{Name: "a"}, {Name: "b"}}, ArbiterConfig{
		Mode:                    ModeStatic,
		Admission:               true,
		BandwidthPagesPerPeriod: 4, // 2 promotions per tenant per period
	})
	// Fill the fast tier from tenant 1 so tenant 0's pages start slow.
	touchAs(m, 1, 0, 16)
	touchAs(m, 0, 20, 6)
	v0 := p.View(0)

	// Demote two of tenant 1's fast pages to open physical room.
	v1 := p.View(1)
	for pg := 0; pg < 3; pg++ {
		if err := v1.MovePage(memsim.PageID(pg), memsim.Slow); err != nil {
			t.Fatalf("demotion %d: %v (demotions must never be denied)", pg, err)
		}
	}

	// Tenant 0's budget is 2 promotions per period: the third is denied.
	if err := v0.MovePage(20, memsim.Fast); err != nil {
		t.Fatalf("promotion 1: %v", err)
	}
	if err := v0.MovePage(21, memsim.Fast); err != nil {
		t.Fatalf("promotion 2: %v", err)
	}
	err := v0.MovePage(22, memsim.Fast)
	if !errors.Is(err, ErrAdmissionDenied) {
		t.Fatalf("promotion 3 = %v, want ErrAdmissionDenied", err)
	}
	if !errors.Is(err, memsim.ErrTierFull) {
		t.Error("ErrAdmissionDenied does not wrap memsim.ErrTierFull")
	}
	if got := p.Arbiter().Denials(0); got != 1 {
		t.Errorf("denials = %d, want 1", got)
	}

	// A new control period refills the budget.
	p.BeginPeriod()
	if err := v0.MovePage(22, memsim.Fast); err != nil {
		t.Fatalf("promotion after refill: %v", err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// driveRebalance builds a two-tenant dynamic plane where tenant 0 hits
// fast constantly and tenant 1 misses constantly, then runs periods
// until the first rebalance window closes.
func driveRebalance(t *testing.T, cfg ArbiterConfig) (*memsim.Machine, *Plane) {
	t.Helper()
	m := testMachine()
	p := NewPlane(m, []Tenant{{Name: "hot"}, {Name: "cold"}}, cfg)
	touchAs(m, 0, 0, 4)   // in fast
	touchAs(m, 1, 20, 30) // mostly slow
	// Two windows of skewed traffic: the first rebalance establishes the
	// baseline counters, the second observes the skew and moves quota.
	for w := 0; w < 2; w++ {
		for i := 0; i < 200; i++ {
			touchAs(m, 0, 0, 4)
			m.SetCurrentTenant(1)
			m.Access(uint64(int64(40+i%8)*m.PageSize()), false)
		}
		for i := 0; i < cfg.RebalancePeriods; i++ {
			p.BeginPeriod()
		}
	}
	return m, p
}

func TestDynamicRebalanceMovesQuotaDownTheGradient(t *testing.T) {
	cfg := ArbiterConfig{Mode: ModeDynamic, RebalancePeriods: 2}
	m, p := driveRebalance(t, cfg)
	a := p.Arbiter()
	if a.Rebalances() == 0 {
		t.Fatal("no rebalance executed under maximal hit-ratio skew")
	}
	// Quota flows from the all-hit tenant to the all-miss tenant, and
	// conservation holds.
	if !(a.Quota(0) < a.Quota(1)) {
		t.Errorf("quota hot=%d cold=%d, want donor < receiver", a.Quota(0), a.Quota(1))
	}
	if sum := a.Quota(0) + a.Quota(1); sum != m.CapacityPages(memsim.Fast) {
		t.Errorf("quotas sum to %d after rebalance, want %d", sum, m.CapacityPages(memsim.Fast))
	}
	if a.WindowHitRatio(0) <= a.WindowHitRatio(1) {
		t.Errorf("window ratios hot=%.2f cold=%.2f, want hot > cold",
			a.WindowHitRatio(0), a.WindowHitRatio(1))
	}

	// Determinism: the identical drive yields the identical quotas.
	_, p2 := driveRebalance(t, cfg)
	if p2.Arbiter().Quota(0) != a.Quota(0) || p2.Arbiter().Rebalances() != a.Rebalances() {
		t.Error("identical drive produced different arbiter state")
	}
}

func TestDynamicRebalanceRespectsQuotaFloor(t *testing.T) {
	m := testMachine()
	p := NewPlane(m, []Tenant{{Name: "hot"}, {Name: "cold"}}, ArbiterConfig{
		Mode:             ModeDynamic,
		RebalancePeriods: 1,
		QuotaStepFrac:    0.5, // huge steps to hit the floor fast
		MinQuotaFrac:     0.25,
	})
	floor := int(0.25 * float64(p.Arbiter().Quota(0)))
	touchAs(m, 0, 0, 4)
	touchAs(m, 1, 20, 30)
	for w := 0; w < 12; w++ {
		for i := 0; i < 50; i++ {
			touchAs(m, 0, 0, 4)
			m.SetCurrentTenant(1)
			m.Access(uint64(int64(40+i%8)*m.PageSize()), false)
		}
		p.BeginPeriod()
	}
	if q := p.Arbiter().Quota(0); q < floor {
		t.Errorf("donor quota %d fell below floor %d", q, floor)
	}
	if sum := p.Arbiter().Quota(0) + p.Arbiter().Quota(1); sum != m.CapacityPages(memsim.Fast) {
		t.Errorf("quotas sum to %d, want %d", sum, m.CapacityPages(memsim.Fast))
	}
}

func TestNewPlaneDefaultsAndPanics(t *testing.T) {
	m := testMachine()
	p := NewPlane(m, []Tenant{{}, {Weight: -3}}, ArbiterConfig{Mode: ModeStatic})
	if got := p.Tenant(0).Name; got != "tenant0" {
		t.Errorf("defaulted name = %q, want tenant0", got)
	}
	if got := p.Tenant(1).Weight; got != 1 {
		t.Errorf("defaulted weight = %d, want 1", got)
	}
	// Equal (defaulted) weights → equal quotas.
	if p.Arbiter().Quota(0) != p.Arbiter().Quota(1) {
		t.Errorf("equal-weight quotas %d != %d", p.Arbiter().Quota(0), p.Arbiter().Quota(1))
	}
	defer func() {
		if recover() == nil {
			t.Error("NewPlane with no tenants did not panic")
		}
	}()
	NewPlane(testMachine(), nil, ArbiterConfig{})
}
