// Package lru implements Linux-style page LRU lists: each memory tier
// maintains an active and an inactive list, and pages move between them
// based on referenced (accessed) bits, second-chance style.
//
// ArtMem uses these lists for its recency-aware page sorting (§4.3):
// demotion candidates come from the tail of the fast tier's inactive
// list, promotion candidates from the head of the capacity tier's active
// list, and — unlike the conservative status-preserving policies of prior
// systems — a migrated page is always inserted at the head of the
// destination's active list.
//
// The lists are intrusive: per-page link storage is allocated once, each
// page is on at most one list, and all operations are O(1).
//
// Lists are single-threaded and shard-local: every shard of a
// memsim.ShardedMachine (DESIGN.md §12) owns an independent set of the
// four lists covering only that shard's pages, protected by the shard
// lock. Nothing here locks; cross-shard migration re-inserts the page
// into the destination shard's lists under the two-shard transaction.
package lru

import (
	"fmt"

	"artmem/internal/memsim"
)

// ListID names one of the four page lists (or none).
type ListID uint8

// The lists. None means the page is not on any list (e.g. not yet
// allocated).
const (
	None ListID = iota
	FastActive
	FastInactive
	SlowActive
	SlowInactive
	numLists
)

// String returns a human-readable list name.
func (id ListID) String() string {
	switch id {
	case None:
		return "none"
	case FastActive:
		return "fast-active"
	case FastInactive:
		return "fast-inactive"
	case SlowActive:
		return "slow-active"
	case SlowInactive:
		return "slow-inactive"
	}
	return fmt.Sprintf("ListID(%d)", uint8(id))
}

// ActiveOf returns the active list of tier t.
func ActiveOf(t memsim.TierID) ListID {
	if t == memsim.Fast {
		return FastActive
	}
	return SlowActive
}

// InactiveOf returns the inactive list of tier t.
func InactiveOf(t memsim.TierID) ListID {
	if t == memsim.Fast {
		return FastInactive
	}
	return SlowInactive
}

// TierOf returns the tier a list belongs to. It panics for None.
func TierOf(id ListID) memsim.TierID {
	switch id {
	case FastActive, FastInactive:
		return memsim.Fast
	case SlowActive, SlowInactive:
		return memsim.Slow
	}
	panic("lru: TierOf(None)")
}

// IsActive reports whether id is an active list.
func IsActive(id ListID) bool { return id == FastActive || id == SlowActive }

// PageLists holds the four lists over a fixed page space.
type PageLists struct {
	prev, next []memsim.PageID
	list       []ListID
	head, tail [numLists]memsim.PageID
	size       [numLists]int

	// transition, when non-nil, observes every list change: it fires
	// after page p has moved from one list to another (to == None for a
	// bare removal). Same-list reinsertions (recency refreshes) do not
	// fire — they are position changes, not state changes.
	transition func(p memsim.PageID, from, to ListID)
}

// SetTransitionHook installs fn as the list-transition observer (nil to
// remove). The page-lifecycle tracer uses this to journal LRU state
// changes for its sampled pages.
func (l *PageLists) SetTransitionHook(fn func(p memsim.PageID, from, to ListID)) {
	l.transition = fn
}

// New returns empty lists for a space of numPages pages.
func New(numPages int) *PageLists {
	l := &PageLists{
		prev: make([]memsim.PageID, numPages),
		next: make([]memsim.PageID, numPages),
		list: make([]ListID, numPages),
	}
	for i := range l.prev {
		l.prev[i], l.next[i] = memsim.NoPage, memsim.NoPage
	}
	for i := range l.head {
		l.head[i], l.tail[i] = memsim.NoPage, memsim.NoPage
	}
	return l
}

// NumPages returns the size of the page space.
func (l *PageLists) NumPages() int { return len(l.list) }

// ListOf returns the list page p currently belongs to (None if unlisted).
func (l *PageLists) ListOf(p memsim.PageID) ListID { return l.list[p] }

// Len returns the number of pages on list id.
func (l *PageLists) Len(id ListID) int { return l.size[id] }

// Head returns the first page of list id, or memsim.NoPage when empty.
// The head is the most recently inserted end for PushHead.
func (l *PageLists) Head(id ListID) memsim.PageID { return l.head[id] }

// Tail returns the last page of list id, or memsim.NoPage when empty.
func (l *PageLists) Tail(id ListID) memsim.PageID { return l.tail[id] }

// Next returns the page after p toward the tail, or memsim.NoPage.
func (l *PageLists) Next(p memsim.PageID) memsim.PageID { return l.next[p] }

// Prev returns the page before p toward the head, or memsim.NoPage.
func (l *PageLists) Prev(p memsim.PageID) memsim.PageID { return l.prev[p] }

// Remove takes page p off whatever list it is on. Removing an unlisted
// page is a no-op.
func (l *PageLists) Remove(p memsim.PageID) {
	if from := l.remove(p); from != None && l.transition != nil {
		l.transition(p, from, None)
	}
}

// remove unlinks p without firing the transition hook and returns the
// list it was on (None if unlisted). Push* use it so a move fires one
// from→to transition rather than a remove plus an insert.
func (l *PageLists) remove(p memsim.PageID) ListID {
	id := l.list[p]
	if id == None {
		return None
	}
	pr, nx := l.prev[p], l.next[p]
	if pr != memsim.NoPage {
		l.next[pr] = nx
	} else {
		l.head[id] = nx
	}
	if nx != memsim.NoPage {
		l.prev[nx] = pr
	} else {
		l.tail[id] = pr
	}
	l.prev[p], l.next[p] = memsim.NoPage, memsim.NoPage
	l.list[p] = None
	l.size[id]--
	return id
}

// notify fires the transition hook for a completed move. Same-list
// refreshes stay silent.
func (l *PageLists) notify(p memsim.PageID, from, to ListID) {
	if l.transition != nil && from != to {
		l.transition(p, from, to)
	}
}

// PushHead inserts page p at the head of list id, removing it from any
// list it was on. Pushing to None just removes the page.
func (l *PageLists) PushHead(id ListID, p memsim.PageID) {
	from := l.remove(p)
	if id != None {
		h := l.head[id]
		l.next[p] = h
		l.prev[p] = memsim.NoPage
		if h != memsim.NoPage {
			l.prev[h] = p
		} else {
			l.tail[id] = p
		}
		l.head[id] = p
		l.list[p] = id
		l.size[id]++
	}
	l.notify(p, from, id)
}

// PushTail inserts page p at the tail of list id, removing it from any
// list it was on. Pushing to None just removes the page.
func (l *PageLists) PushTail(id ListID, p memsim.PageID) {
	from := l.remove(p)
	if id != None {
		t := l.tail[id]
		l.prev[p] = t
		l.next[p] = memsim.NoPage
		if t != memsim.NoPage {
			l.next[t] = p
		} else {
			l.head[id] = p
		}
		l.tail[id] = p
		l.list[p] = id
		l.size[id]++
	}
	l.notify(p, from, id)
}

// FromTail visits up to n pages of list id starting at the tail (the
// coldest end) and moving toward the head, stopping early if visit
// returns false. visit must not mutate the lists; collect pages first and
// mutate after (see CollectTail).
func (l *PageLists) FromTail(id ListID, n int, visit func(p memsim.PageID) bool) {
	p := l.tail[id]
	for i := 0; i < n && p != memsim.NoPage; i++ {
		nx := l.prev[p]
		if !visit(p) {
			return
		}
		p = nx
	}
}

// FromHead visits up to n pages of list id starting at the head (the
// hottest end), stopping early if visit returns false. visit must not
// mutate the lists.
func (l *PageLists) FromHead(id ListID, n int, visit func(p memsim.PageID) bool) {
	p := l.head[id]
	for i := 0; i < n && p != memsim.NoPage; i++ {
		nx := l.next[p]
		if !visit(p) {
			return
		}
		p = nx
	}
}

// CollectTail returns up to n pages from the tail of list id, coldest
// first. The returned slice is freshly allocated and safe to mutate the
// lists with.
func (l *PageLists) CollectTail(id ListID, n int) []memsim.PageID {
	out := make([]memsim.PageID, 0, min(n, l.size[id]))
	l.FromTail(id, n, func(p memsim.PageID) bool {
		out = append(out, p)
		return true
	})
	return out
}

// CollectHead returns up to n pages from the head of list id, hottest
// first. The returned slice is freshly allocated.
func (l *PageLists) CollectHead(id ListID, n int) []memsim.PageID {
	out := make([]memsim.PageID, 0, min(n, l.size[id]))
	l.FromHead(id, n, func(p memsim.PageID) bool {
		out = append(out, p)
		return true
	})
	return out
}

// Age performs one second-chance aging pass over tier t, inspecting up to
// scan pages from each of the tier's two lists (tail end):
//
//   - an inactive page whose referenced bit is set is promoted to the
//     head of the active list;
//   - an active page whose referenced bit is clear is demoted to the head
//     of the inactive list;
//   - otherwise the page rotates to the head of its own list.
//
// referenced must report-and-clear the page's accessed bit (e.g.
// Machine.TestAndClearAccessed). This mirrors the kernel's
// shrink_active_list/shrink_inactive_list flow closely enough for the
// scanning-based baselines and for ArtMem's recency ordering.
func (l *PageLists) Age(t memsim.TierID, scan int, referenced func(memsim.PageID) bool) {
	active, inactive := ActiveOf(t), InactiveOf(t)
	for _, p := range l.CollectTail(active, scan) {
		if referenced(p) {
			l.PushHead(active, p)
		} else {
			l.PushHead(inactive, p)
		}
	}
	for _, p := range l.CollectTail(inactive, scan) {
		if referenced(p) {
			l.PushHead(active, p)
		} else {
			l.PushHead(inactive, p)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
