package lru

import (
	"testing"
	"testing/quick"

	"artmem/internal/memsim"
)

func TestListIDHelpers(t *testing.T) {
	if ActiveOf(memsim.Fast) != FastActive || ActiveOf(memsim.Slow) != SlowActive {
		t.Error("ActiveOf wrong")
	}
	if InactiveOf(memsim.Fast) != FastInactive || InactiveOf(memsim.Slow) != SlowInactive {
		t.Error("InactiveOf wrong")
	}
	if TierOf(FastActive) != memsim.Fast || TierOf(SlowInactive) != memsim.Slow {
		t.Error("TierOf wrong")
	}
	if !IsActive(FastActive) || !IsActive(SlowActive) || IsActive(FastInactive) || IsActive(None) {
		t.Error("IsActive wrong")
	}
	for id := None; id < numLists; id++ {
		if id.String() == "" {
			t.Errorf("empty String for %d", id)
		}
	}
}

func TestTierOfNonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TierOf(None) did not panic")
		}
	}()
	TierOf(None)
}

func TestPushHeadOrder(t *testing.T) {
	l := New(10)
	l.PushHead(FastActive, 1)
	l.PushHead(FastActive, 2)
	l.PushHead(FastActive, 3)
	// Head-to-tail order: 3, 2, 1.
	got := l.CollectHead(FastActive, 10)
	want := []memsim.PageID{3, 2, 1}
	assertPages(t, got, want)
	gotT := l.CollectTail(FastActive, 10)
	assertPages(t, gotT, []memsim.PageID{1, 2, 3})
	if l.Head(FastActive) != 3 || l.Tail(FastActive) != 1 {
		t.Errorf("head/tail = %d/%d", l.Head(FastActive), l.Tail(FastActive))
	}
}

func TestPushTailOrder(t *testing.T) {
	l := New(10)
	l.PushTail(SlowInactive, 1)
	l.PushTail(SlowInactive, 2)
	assertPages(t, l.CollectHead(SlowInactive, 10), []memsim.PageID{1, 2})
}

func TestMoveBetweenLists(t *testing.T) {
	l := New(10)
	l.PushHead(FastActive, 5)
	if l.ListOf(5) != FastActive {
		t.Fatalf("ListOf = %v", l.ListOf(5))
	}
	l.PushHead(SlowActive, 5) // implicit removal from FastActive
	if l.Len(FastActive) != 0 || l.Len(SlowActive) != 1 {
		t.Errorf("lens = %d/%d", l.Len(FastActive), l.Len(SlowActive))
	}
	if l.ListOf(5) != SlowActive {
		t.Errorf("ListOf = %v", l.ListOf(5))
	}
}

func TestRemove(t *testing.T) {
	l := New(10)
	for _, p := range []memsim.PageID{1, 2, 3} {
		l.PushTail(FastInactive, p)
	}
	l.Remove(2) // middle
	assertPages(t, l.CollectHead(FastInactive, 10), []memsim.PageID{1, 3})
	l.Remove(1) // head
	assertPages(t, l.CollectHead(FastInactive, 10), []memsim.PageID{3})
	l.Remove(3) // tail, single element
	if l.Len(FastInactive) != 0 || l.Head(FastInactive) != memsim.NoPage ||
		l.Tail(FastInactive) != memsim.NoPage {
		t.Error("list not empty after removing all")
	}
	l.Remove(7) // unlisted: no-op
	if l.ListOf(7) != None {
		t.Error("unlisted page got a list")
	}
}

func TestPushNoneRemoves(t *testing.T) {
	l := New(4)
	l.PushHead(FastActive, 0)
	l.PushHead(None, 0)
	if l.ListOf(0) != None || l.Len(FastActive) != 0 {
		t.Error("PushHead(None) did not remove")
	}
	l.PushTail(FastActive, 1)
	l.PushTail(None, 1)
	if l.ListOf(1) != None {
		t.Error("PushTail(None) did not remove")
	}
}

func TestFromTailEarlyStop(t *testing.T) {
	l := New(10)
	for i := memsim.PageID(0); i < 5; i++ {
		l.PushHead(FastActive, i)
	}
	visited := 0
	l.FromTail(FastActive, 10, func(memsim.PageID) bool {
		visited++
		return visited < 2
	})
	if visited != 2 {
		t.Errorf("visited %d, want 2", visited)
	}
	// Bounded by n.
	visited = 0
	l.FromHead(FastActive, 3, func(memsim.PageID) bool { visited++; return true })
	if visited != 3 {
		t.Errorf("visited %d, want 3", visited)
	}
}

func TestAgeSecondChance(t *testing.T) {
	l := New(8)
	// Active: pages 0,1 (0 referenced). Inactive: pages 2,3 (3 referenced).
	l.PushTail(FastActive, 0)
	l.PushTail(FastActive, 1)
	l.PushTail(FastInactive, 2)
	l.PushTail(FastInactive, 3)
	refd := map[memsim.PageID]bool{0: true, 3: true}
	l.Age(memsim.Fast, 10, func(p memsim.PageID) bool {
		r := refd[p]
		refd[p] = false
		return r
	})
	if l.ListOf(0) != FastActive {
		t.Errorf("referenced active page 0 moved to %v", l.ListOf(0))
	}
	if l.ListOf(1) != FastInactive {
		t.Errorf("unreferenced active page 1 on %v, want inactive", l.ListOf(1))
	}
	if l.ListOf(2) != FastInactive {
		t.Errorf("unreferenced inactive page 2 on %v, want inactive", l.ListOf(2))
	}
	if l.ListOf(3) != FastActive {
		t.Errorf("referenced inactive page 3 on %v, want active", l.ListOf(3))
	}
}

func TestAgeDoesNotTouchOtherTier(t *testing.T) {
	l := New(4)
	l.PushTail(SlowActive, 0)
	l.Age(memsim.Fast, 10, func(memsim.PageID) bool { return false })
	if l.ListOf(0) != SlowActive {
		t.Errorf("aging fast tier moved slow page to %v", l.ListOf(0))
	}
}

// Property: under arbitrary operation sequences, (a) sizes equal the
// lengths walked from head, (b) every page is on the list ListOf claims,
// (c) walking head→tail and tail→head give reversed sequences.
func TestListInvariantsProperty(t *testing.T) {
	const n = 16
	f := func(ops []uint16) bool {
		l := New(n)
		for _, op := range ops {
			p := memsim.PageID(op % n)
			id := ListID(op / n % uint16(numLists))
			switch (op / (n * uint16(numLists))) % 3 {
			case 0:
				l.PushHead(id, p)
			case 1:
				l.PushTail(id, p)
			case 2:
				l.Remove(p)
			}
		}
		total := 0
		for id := FastActive; id < numLists; id++ {
			var fwd []memsim.PageID
			l.FromHead(id, n+1, func(p memsim.PageID) bool {
				fwd = append(fwd, p)
				return true
			})
			if len(fwd) != l.Len(id) {
				return false
			}
			var bwd []memsim.PageID
			l.FromTail(id, n+1, func(p memsim.PageID) bool {
				bwd = append(bwd, p)
				return true
			})
			if len(bwd) != len(fwd) {
				return false
			}
			for i := range fwd {
				if fwd[i] != bwd[len(bwd)-1-i] {
					return false
				}
				if l.ListOf(fwd[i]) != id {
					return false
				}
			}
			total += len(fwd)
		}
		// Every page not on a list must claim None.
		onList := 0
		for p := memsim.PageID(0); p < n; p++ {
			if l.ListOf(p) != None {
				onList++
			}
		}
		return onList == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func assertPages(t *testing.T, got, want []memsim.PageID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("pages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pages = %v, want %v", got, want)
		}
	}
}

func BenchmarkPushHeadRemove(b *testing.B) {
	l := New(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := memsim.PageID(i & (1<<16 - 1))
		l.PushHead(FastActive, p)
	}
}

func TestTransitionHook(t *testing.T) {
	l := New(8)
	type move struct {
		p        memsim.PageID
		from, to ListID
	}
	var got []move
	l.SetTransitionHook(func(p memsim.PageID, from, to ListID) {
		got = append(got, move{p, from, to})
	})

	l.PushHead(FastActive, 1)   // none -> fast-active
	l.PushHead(FastActive, 1)   // refresh: silent
	l.PushTail(FastActive, 1)   // refresh via tail: silent
	l.PushHead(FastInactive, 1) // fast-active -> fast-inactive
	l.PushTail(SlowActive, 1)   // fast-inactive -> slow-active
	l.Remove(1)                 // slow-active -> none
	l.Remove(1)                 // unlisted: silent
	l.PushHead(None, 2)         // unlisted push-to-none: silent

	want := []move{
		{1, None, FastActive},
		{1, FastActive, FastInactive},
		{1, FastInactive, SlowActive},
		{1, SlowActive, None},
	}
	if len(got) != len(want) {
		t.Fatalf("hook fired %d times, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("transition %d = %v, want %v", i, got[i], want[i])
		}
	}

	// Uninstalling restores silence.
	l.SetTransitionHook(nil)
	l.PushHead(FastActive, 3)
	if len(got) != len(want) {
		t.Error("hook fired after removal")
	}
}

func TestTransitionHookDuringAge(t *testing.T) {
	l := New(4)
	fires := 0
	l.PushHead(FastActive, 0)
	l.PushHead(FastInactive, 1)
	l.SetTransitionHook(func(p memsim.PageID, from, to ListID) {
		if from == to {
			t.Errorf("hook fired for same-list refresh of page %d on %v", p, from)
		}
		fires++
	})
	// Page 0 unreferenced: active -> inactive. Page 1 referenced:
	// inactive -> active. Both are real transitions.
	refs := map[memsim.PageID]bool{1: true}
	l.Age(memsim.Fast, 10, func(p memsim.PageID) bool { return refs[p] })
	if fires != 2 {
		t.Errorf("hook fired %d times during aging, want 2", fires)
	}
}
