package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Event kinds recorded in the decision trace.
const (
	// KindDecision is one RL period: the agent observed a state, updated
	// its tables, chose actions, and migrated.
	KindDecision = "decision"
	// KindDegraded marks a transition into the heuristic fallback mode.
	KindDegraded = "degraded"
	// KindReengaged marks RL re-engagement after a degraded stretch.
	KindReengaged = "reengaged"
	// KindFault records a resilience incident outside the regular
	// decision cadence (e.g. a tier-full stop or a rollback storm).
	KindFault = "fault"
	// KindCooling records an EMA cooling event with its threshold reset.
	KindCooling = "cooling"
)

// Event is one structured decision-trace record. Decision events carry
// the full RL tuple; other kinds fill the fields that apply and leave
// the rest zero. TimeNs is the simulator's virtual clock, so a trace
// replays identically across real-time jitter.
type Event struct {
	Seq    uint64 `json:"seq"`
	TimeNs int64  `json:"time_ns"`
	Kind   string `json:"kind"`

	// RL tuple for the period.
	State  int     `json:"state"`
	Reward float64 `json:"reward"`
	// Quota is the migration number chosen (pages); ThresholdDelta the
	// chosen threshold adjustment; Threshold the resulting threshold.
	Quota          int    `json:"quota"`
	ThresholdDelta int    `json:"threshold_delta"`
	Threshold      uint32 `json:"threshold"`

	// Migration outcome of the period.
	Attempted  int `json:"attempted"`
	Promoted   int `json:"promoted"`
	Failed     int `json:"failed"`
	RolledBack int `json:"rolled_back"`

	// Signal and mode.
	WinFast  uint64 `json:"win_fast"`
	WinSlow  uint64 `json:"win_slow"`
	Degraded bool   `json:"degraded"`

	// Detail carries free-form context for fault/cooling events.
	Detail string `json:"detail,omitempty"`
}

// DefaultTraceCap is the default decision-trace ring capacity: at the
// daemon's 10ms decision period this holds ~40s of history in ~1MB.
const DefaultTraceCap = 4096

// Trace is a bounded ring of Events. Appends are O(1) and evict the
// oldest event once the ring is full; reads snapshot in order. Safe for
// concurrent use — the online runtime appends under its own lock while
// HTTP handlers drain.
type Trace struct {
	mu    sync.Mutex
	buf   []Event
	head  int // next slot to write
	count int
	seq   uint64 // total events ever appended
}

// NewTrace returns a trace ring holding up to capacity events
// (DefaultTraceCap if capacity <= 0).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{buf: make([]Event, capacity)}
}

// Append records e, stamping its sequence number. The oldest event is
// evicted when the ring is full. Nil-safe.
func (t *Trace) Append(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	t.buf[t.head] = e
	t.head = (t.head + 1) % len(t.buf)
	if t.count < len(t.buf) {
		t.count++
	}
	t.mu.Unlock()
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Total returns the number of events ever appended (retained or
// evicted).
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Events returns up to n of the most recent events, oldest first
// (n <= 0 returns everything retained). The slice is a copy.
func (t *Trace) Events(n int) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.count {
		n = t.count
	}
	out := make([]Event, n)
	start := t.head - n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < n; i++ {
		out[i] = t.buf[(start+i)%len(t.buf)]
	}
	return out
}

// Last returns the most recent event and whether one exists.
func (t *Trace) Last() (Event, bool) {
	ev := t.Events(1)
	if len(ev) == 0 {
		return Event{}, false
	}
	return ev[0], true
}

// WriteJSONL writes up to n of the most recent events (oldest first) as
// one JSON object per line — the drain format served by /trace.
func (t *Trace) WriteJSONL(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events(n) {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// Set bundles the registry and decision trace that one runtime owns —
// the unit of telemetry a System, a standalone policy, or a test wires
// through the stack.
type Set struct {
	Registry *Registry
	Trace    *Trace
	// PageTrace, when non-nil, enables page-lifecycle tracing for a
	// hash-sampled page subset (see pagetrace.go). Nil — the default —
	// keeps every lifecycle hook a one-branch no-op.
	PageTrace *PageTrace
}

// NewSet returns a fresh registry plus a default-capacity trace. Page
// tracing stays disabled; callers opt in by assigning Set.PageTrace.
func NewSet() *Set {
	return &Set{Registry: NewRegistry(), Trace: NewTrace(DefaultTraceCap)}
}
