package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// testClock is a hand-advanced virtual clock for SLO tests.
type testClock struct{ now int64 }

func (c *testClock) fn() func() int64 { return func() int64 { return c.now } }

func TestSLOMonitorNilIsNoOp(t *testing.T) {
	var m *SLOMonitor
	m.Observe(0, 100, true)
	m.SetObjective(0, LatencySLO())
	rep := m.Report()
	if len(rep.Tenants) != 0 || rep.Tenants == nil {
		t.Fatalf("nil monitor report = %+v, want empty non-nil tenants", rep)
	}
}

func TestSLOBurnRates(t *testing.T) {
	clk := &testClock{now: 1}
	obj := SLOObjective{Class: "latency", LatencyNs: 1000, LatencyTarget: 0.99, LossTarget: 0.99}
	m := NewSLOMonitor([]SLOObjective{obj}, []int64{int64(time.Minute)}, clk.fn())
	// 100 batches: 2 slow, 1 lost.
	for i := 0; i < 97; i++ {
		m.Observe(0, 500, true)
	}
	m.Observe(0, 2000, true)
	m.Observe(0, 5000, true)
	m.Observe(0, 0, false)
	rep := m.Report()
	if len(rep.Tenants) != 1 {
		t.Fatalf("tenants = %d, want 1", len(rep.Tenants))
	}
	w := rep.Tenants[0].Windows[0]
	if w.Batches != 100 || w.LatencyBreaches != 2 || w.Lost != 1 {
		t.Fatalf("window = %+v, want 100 batches / 2 breaches / 1 lost", w)
	}
	// 2% slow against a 1% budget burns at 2x; 1% lost against 1% at 1x.
	if math.Abs(w.LatencyBurn-2.0) > 1e-9 {
		t.Fatalf("latency burn = %v, want 2.0", w.LatencyBurn)
	}
	if math.Abs(w.LossBurn-1.0) > 1e-9 {
		t.Fatalf("loss burn = %v, want 1.0", w.LossBurn)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	clk := &testClock{now: 1}
	windows := []int64{int64(time.Minute), int64(30 * time.Minute)}
	m := NewSLOMonitor([]SLOObjective{BatchSLO()}, windows, clk.fn())
	m.Observe(0, 1, true)
	// Advance past the 1-minute window but stay inside 30 minutes: the
	// short window forgets the batch, the long one still holds it.
	clk.now += int64(2 * time.Minute)
	m.Observe(0, 1, true)
	rep := m.Report()
	short, long := rep.Tenants[0].Windows[0], rep.Tenants[0].Windows[1]
	if short.Batches != 1 {
		t.Fatalf("1m window holds %d batches, want 1 (expiry failed)", short.Batches)
	}
	if long.Batches != 2 {
		t.Fatalf("30m window holds %d batches, want 2", long.Batches)
	}
}

func TestSLOSetObjectiveResetsBudget(t *testing.T) {
	clk := &testClock{now: 1}
	m := NewSLOMonitor([]SLOObjective{BatchSLO()}, []int64{int64(time.Minute)}, clk.fn())
	m.Observe(0, 1, false)
	m.SetObjective(0, LatencySLO())
	rep := m.Report()
	if got := rep.Tenants[0].Windows[0].Batches; got != 0 {
		t.Fatalf("re-registered slot still holds %d batches", got)
	}
	if rep.Tenants[0].Class != "latency" {
		t.Fatalf("class = %q, want latency", rep.Tenants[0].Class)
	}
	m.SetObjective(9, LatencySLO()) // out of range: ignored
	m.Observe(9, 1, true)           // out of range: ignored
}

// TestSLOReportSchema pins the /slo JSON document: key set and
// structure stay stable for external consumers.
func TestSLOReportSchema(t *testing.T) {
	clk := &testClock{now: 1}
	m := NewSLOMonitor([]SLOObjective{LatencySLO()}, []int64{int64(time.Minute)}, clk.fn())
	m.Observe(0, 1, true)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"now_ns", "windows_ns", "tenants"} {
		if _, ok := doc[k]; !ok {
			t.Fatalf("/slo missing pinned key %q", k)
		}
	}
	tenants := doc["tenants"].([]any)
	ten := tenants[0].(map[string]any)
	for _, k := range []string{"slot", "class", "latency_objective_ns", "latency_target", "loss_target", "windows"} {
		if _, ok := ten[k]; !ok {
			t.Fatalf("/slo tenant missing pinned key %q", k)
		}
	}
	win := ten["windows"].([]any)[0].(map[string]any)
	want := []string{"window_ns", "batches", "latency_breaches", "lost", "latency_burn", "loss_burn"}
	if len(win) != len(want) {
		t.Fatalf("window has %d keys, want %d: %v", len(win), len(want), win)
	}
	for _, k := range want {
		if _, ok := win[k]; !ok {
			t.Fatalf("/slo window missing pinned key %q", k)
		}
	}
}

func TestParseSLOClass(t *testing.T) {
	if o, err := ParseSLOClass("latency"); err != nil || o.Class != "latency" {
		t.Fatalf("latency: %+v, %v", o, err)
	}
	if o, err := ParseSLOClass(""); err != nil || o.Class != "batch" {
		t.Fatalf("empty: %+v, %v", o, err)
	}
	if _, err := ParseSLOClass("gold"); err == nil {
		t.Fatal("unknown class accepted")
	}
}
