package telemetry

import (
	"runtime"
	"runtime/metrics"
)

// RegisterRuntimeMetrics registers pull-based gauges for the Go
// runtime: goroutine count, heap usage, GC activity, and the scheduler
// pause total. The daemon wires these into its /metrics endpoint so a
// scrape sees process health next to simulator state. Reads go through
// runtime/metrics, which is designed for cheap concurrent sampling.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	sample := func(name string) func() float64 {
		s := []metrics.Sample{{Name: name}}
		return func() float64 {
			metrics.Read(s)
			switch s[0].Value.Kind() {
			case metrics.KindUint64:
				return float64(s[0].Value.Uint64())
			case metrics.KindFloat64:
				return s[0].Value.Float64()
			}
			return 0
		}
	}
	r.GaugeFunc("go_heap_objects_bytes", "Bytes of allocated heap objects.",
		sample("/memory/classes/heap/objects:bytes"))
	r.GaugeFunc("go_heap_goal_bytes", "Heap size target of the next GC cycle.",
		sample("/gc/heap/goal:bytes"))
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		sample("/gc/cycles/total:gc-cycles"))
	r.CounterFunc("go_cpu_gc_seconds_total", "Estimated CPU time spent in GC.",
		sample("/cpu/classes/gc/total:cpu-seconds"))
}
