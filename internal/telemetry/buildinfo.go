package telemetry

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary: the daemon logs it at
// startup, artmemd -version prints it, and artbench stamps benchmark
// result files with the revision so runs are comparable across commits.
type BuildInfo struct {
	// GoVersion is the toolchain that built the binary.
	GoVersion string
	// Revision is the short VCS revision, or "dev" when the binary was
	// built without VCS stamping (go test, vendored builds).
	Revision string
	// Dirty reports uncommitted changes at build time.
	Dirty bool
	// Time is the commit timestamp (RFC 3339), empty when unknown.
	Time string
}

// ReadBuildInfo extracts the binary's build identity from the embedded
// module info. It never fails: missing fields keep their fallbacks.
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version(), Revision: "dev"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if info.GoVersion != "" {
		bi.GoVersion = info.GoVersion
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			if len(s.Value) > 12 {
				bi.Revision = s.Value[:12]
			} else if s.Value != "" {
				bi.Revision = s.Value
			}
		case "vcs.modified":
			bi.Dirty = s.Value == "true"
		case "vcs.time":
			bi.Time = s.Value
		}
	}
	return bi
}

// String renders "revision[-dirty] (goversion)".
func (b BuildInfo) String() string {
	s := b.Revision
	if b.Dirty {
		s += "-dirty"
	}
	return s + " (" + b.GoVersion + ")"
}
