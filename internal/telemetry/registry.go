// Package telemetry is the observability subsystem for the ArtMem
// stack: a lock-cheap metrics registry (counters, gauges, histograms
// with atomic hot paths) with Prometheus text-format exposition and JSON
// snapshots, plus a bounded decision-trace ring (trace.go) that records
// one structured event per RL period.
//
// Design constraints, in order:
//
//  1. The access hot path must stay hot. Counter.Inc, Gauge.Set and
//     Histogram.Observe are single atomic operations (Observe adds a
//     short bounds scan); no locks, no allocation, no map lookups.
//  2. Disabled telemetry must cost one predictable branch. Every metric
//     method is nil-safe: a nil *Counter, *Gauge or *Histogram is a
//     no-op, so instrumented code never guards call sites.
//  3. Exposition is rare and may be slow. WritePrometheus and Snapshot
//     take the registry mutex and may invoke pull-based metric
//     functions, which are allowed to take their own locks — callers
//     must therefore never hold those locks while scraping.
//
// The registry is deliberately not the Prometheus client library: the
// simulator needs a dependency-free subset (this repo vendors nothing),
// and the pull-function metrics let the online runtime expose
// simulator-internal state that plain atomic metrics cannot represent
// race-free.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant key/value pair attached to a metric series.
// Labels distinguish series that share a metric name (e.g. the fast and
// slow occupancy gauges both named artmem_tier_pages).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Counters are monotonic; negative deltas are a programming
// error and are ignored rather than corrupting the series.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, stored as a float64. The
// zero value is ready to use; a nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adds delta with a compare-and-swap loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations in cumulative buckets, Prometheus
// style: bucket i counts observations ≤ Bounds[i], and an implicit
// +Inf bucket counts everything (the overflow bucket). A nil Histogram
// is a no-op.
type Histogram struct {
	bounds  []float64       // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// DefBuckets is a general-purpose latency ladder in nanoseconds,
// spanning a cache hit (~1ns) to a badly degraded migration (~1ms).
var DefBuckets = []float64{
	1, 2, 5, 10, 20, 50, 100, 200, 500,
	1_000, 2_000, 5_000, 10_000, 100_000, 1_000_000,
}

// ExpBuckets returns n exponentially spaced bucket upper bounds
// starting at start and growing by factor — the shape end-to-end
// request latencies want (DefBuckets tops out at 1ms, far below a
// network round trip). Panics on a non-positive start or n, or a
// factor ≤ 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// HDRBuckets returns a log-bucketed high-dynamic-range ladder: the
// range [min, max] is covered by successive power-of-two segments, each
// split into sub linearly spaced sub-buckets — HDR-histogram style
// constant relative error (~1/sub) across the whole range, where a
// plain exponential ladder's error grows with its factor. This is the
// bucket shape the serve-path latency histograms use: tight enough for
// meaningful p99/p999 interpolation from microseconds to seconds
// without hundreds of buckets. Panics on min <= 0, max <= min, or
// sub < 1.
func HDRBuckets(min, max float64, sub int) []float64 {
	if min <= 0 || max <= min || sub < 1 {
		panic("telemetry: HDRBuckets needs 0 < min < max, sub >= 1")
	}
	b := []float64{min}
	for lo := min; lo < max; lo *= 2 {
		step := lo / float64(sub)
		for i := 1; i <= sub; i++ {
			v := lo + step*float64(i)
			if v >= max {
				return append(b, max)
			}
			b = append(b, v)
		}
	}
	return append(b, max)
}

// NewHistogram returns a histogram over the given bucket upper bounds.
// Bounds are sorted and deduplicated; nil bounds use DefBuckets. Useful
// mostly for tests — production code obtains histograms from a Registry.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	uniq := b[:0]
	for i, v := range b {
		if i == 0 || v != b[i-1] {
			uniq = append(uniq, v)
		}
	}
	return &Histogram{
		bounds: uniq,
		counts: make([]atomic.Uint64, len(uniq)+1),
	}
}

// Observe records one observation. Values above the last bound land in
// the +Inf overflow bucket; values at or below the first bound land in
// the first bucket (there is no underflow — Prometheus buckets are
// cumulative upper bounds).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: the bucket ladders here are ~15 entries and hot-path
	// observations cluster in the low buckets, so a scan beats binary
	// search on branch predictability.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Buckets returns the bucket bounds and their cumulative counts; the
// final entry of counts is the +Inf bucket (== Count()).
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}

// Quantile estimates the q-quantile (0 < q < 1) of the observed
// distribution by linear interpolation inside the bucket holding the
// target rank — the standard Prometheus histogram_quantile estimate,
// computed server-side. Observations in the +Inf overflow bucket clamp
// to the last finite bound (there is nothing to interpolate toward).
// Returns 0 for an empty (or nil) histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	bounds, cum := h.Buckets()
	return QuantileFromData(HistogramData{Bounds: bounds, Counts: cum, Sum: h.Sum()}, q)
}

// QuantileFromData is Quantile over materialized bucket state — the
// shared estimator for live histograms, pull-based histogram functions,
// and consumers of the JSON snapshot. Returns 0 when the data is empty.
func QuantileFromData(d HistogramData, q float64) float64 {
	n := len(d.Counts)
	if n == 0 || d.Counts[n-1] == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(d.Counts[n-1])
	i := 0
	for i < len(d.Bounds) && float64(d.Counts[i]) < rank {
		i++
	}
	if i >= len(d.Bounds) {
		// Target rank lands in +Inf: clamp to the last finite bound.
		if len(d.Bounds) == 0 {
			return 0
		}
		return d.Bounds[len(d.Bounds)-1]
	}
	lo := 0.0
	var below uint64
	if i > 0 {
		lo = d.Bounds[i-1]
		below = d.Counts[i-1]
	}
	in := d.Counts[i] - below
	if in == 0 {
		return d.Bounds[i]
	}
	return lo + (d.Bounds[i]-lo)*(rank-float64(below))/float64(in)
}

// HistogramData is a point-in-time histogram produced by a pull-based
// histogram function: cumulative counts per upper bound plus an
// implicit trailing +Inf bucket. Counts has len(Bounds)+1 entries; the
// last is the total observation count.
type HistogramData struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
}

// metricKind is the Prometheus metric type of a series.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	}
	return "gauge"
}

// series is one registered time series.
type series struct {
	name   string // bare metric name (no labels)
	labels string // rendered {k="v",...} or ""
	help   string
	kind   metricKind

	ctr  *Counter
	gag  *Gauge
	hist *Histogram
	fn   func() float64       // pull-based value; used when ctr/gag/hist nil
	hfn  func() HistogramData // pull-based histogram
}

func (s *series) value() float64 {
	switch {
	case s.ctr != nil:
		return float64(s.ctr.Value())
	case s.gag != nil:
		return s.gag.Value()
	case s.fn != nil:
		return s.fn()
	}
	return 0
}

// Registry holds a set of metric series. Registration takes a mutex;
// the returned metric objects are lock-free. A nil Registry ignores
// registrations and returns nil (no-op) metrics, so a subsystem can be
// instrumented unconditionally and wired to a registry only when one
// exists.
type Registry struct {
	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*series)}
}

// EscapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double-quote, and line feed become
// \\, \", and \n; every other byte passes through verbatim. (Go's %q
// escapes far more — tabs, non-printables, non-ASCII — which the
// format forbids: a tab in a label value must appear raw.)
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// UnescapeLabelValue reverses EscapeLabelValue — the parsing side of
// the round trip, used by tests and by consumers of the text format.
func UnescapeLabelValue(v string) string {
	if !strings.Contains(v, `\`) {
		return v
	}
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			switch v[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case '"':
				b.WriteByte('"')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(v[i])
	}
	return b.String()
}

// escapeHelp escapes a HELP string per the exposition format: only
// backslash and line feed (quotes are legal in help text).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", l.Key, EscapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// register adds a series, panicking on duplicate name+labels (metrics
// are registered from code at attach time; a duplicate is a programming
// error, not an input error).
func (r *Registry) register(s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := s.name + s.labels
	if _, dup := r.byKey[key]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %s", key))
	}
	r.byKey[key] = s
	r.series = append(r.series, s)
}

// Counter registers and returns a counter series. On a nil Registry it
// returns nil (a valid no-op Counter).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(&series{name: name, labels: renderLabels(labels), help: help, kind: kindCounter, ctr: c})
	return c
}

// Gauge registers and returns a gauge series. Nil-Registry-safe.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(&series{name: name, labels: renderLabels(labels), help: help, kind: kindGauge, gag: g})
	return g
}

// Histogram registers and returns a histogram series with the given
// bucket bounds (nil uses DefBuckets). Nil-Registry-safe.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	h := NewHistogram(bounds)
	r.register(&series{name: name, labels: renderLabels(labels), help: help, kind: kindHistogram, hist: h})
	return h
}

// quantileExposition is the fixed suffix → q ladder every quantiled
// histogram exposes.
var quantileExposition = []struct {
	suffix string
	q      float64
}{
	{"p50", 0.5}, {"p90", 0.9}, {"p99", 0.99}, {"p999", 0.999},
}

// HistogramQuantiles registers a histogram series (typically over an
// HDRBuckets ladder) plus four pull-based gauge series — name_p50,
// name_p90, name_p99, name_p999 — whose values are interpolated from
// the live bucket state at exposition time. The quantiles therefore
// appear in both the Prometheus text format (as plain gauges, since
// the 0.0.4 format has no native histogram quantiles) and the JSON
// snapshot, with zero observation-path cost beyond the histogram
// itself. Nil-Registry-safe.
func (r *Registry) HistogramQuantiles(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := r.Histogram(name, help, bounds, labels...)
	if r == nil {
		return h
	}
	for _, e := range quantileExposition {
		q := e.q
		r.GaugeFunc(name+"_"+e.suffix,
			fmt.Sprintf("Interpolated %s of %s.", e.suffix, name),
			func() float64 { return h.Quantile(q) }, labels...)
	}
	return h
}

// HistogramFunc registers a pull-based histogram: fn is called at
// exposition time and returns the full bucket state. This is how the
// online runtime exposes an access-latency histogram with zero hot-path
// cost — the simulator counts accesses per (constant) latency class and
// fn folds those counts into buckets under the runtime lock.
// Nil-Registry-safe.
func (r *Registry) HistogramFunc(name, help string, fn func() HistogramData, labels ...Label) {
	if r == nil {
		return
	}
	r.register(&series{name: name, labels: renderLabels(labels), help: help, kind: kindHistogram, hfn: fn})
}

// GaugeFunc registers a pull-based gauge: fn is called at exposition
// time. fn may take locks of its own; callers of WritePrometheus and
// Snapshot must not hold those locks. Nil-Registry-safe.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(&series{name: name, labels: renderLabels(labels), help: help, kind: kindGauge, fn: fn})
}

// CounterFunc registers a pull-based counter (a monotonic value owned
// by someone else, e.g. a simulator counter read under the runtime
// lock). Nil-Registry-safe.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(&series{name: name, labels: renderLabels(labels), help: help, kind: kindCounter, fn: fn})
}

// snapshotSeries returns a stable copy of the series slice.
func (r *Registry) snapshotSeries() []*series {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*series(nil), r.series...)
}

// formatValue renders a sample value in Prometheus text format.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus writes every series in Prometheus text exposition
// format (version 0.0.4). Series registered under the same bare name
// are grouped under one HELP/TYPE header. Safe for concurrent use with
// metric updates; pull functions run on the caller's goroutine.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	written := make(map[string]bool)
	all := r.snapshotSeries()
	for _, s := range all {
		if !written[s.name] {
			written[s.name] = true
			if s.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.name, escapeHelp(s.help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.kind); err != nil {
				return err
			}
			// Keep same-name series adjacent to their header: emit every
			// series sharing this bare name now (Prometheus requires the
			// group to be contiguous).
			for _, t := range all {
				if t.name != s.name {
					continue
				}
				if err := writeSeries(w, t); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// histogramData materializes the bucket state of a histogram series,
// whether backed by a live Histogram or a pull function.
func (s *series) histogramData() HistogramData {
	if s.hfn != nil {
		return s.hfn()
	}
	bounds, cum := s.hist.Buckets()
	return HistogramData{Bounds: bounds, Counts: cum, Sum: s.hist.Sum()}
}

func writeSeries(w io.Writer, s *series) error {
	if s.kind == kindHistogram {
		d := s.histogramData()
		inner := strings.TrimSuffix(strings.TrimPrefix(s.labels, "{"), "}")
		for i, b := range d.Bounds {
			lbl := fmt.Sprintf("le=%q", formatValue(b))
			if inner != "" {
				lbl = inner + "," + lbl
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", s.name, lbl, d.Counts[i]); err != nil {
				return err
			}
		}
		lbl := `le="+Inf"`
		if inner != "" {
			lbl = inner + "," + lbl
		}
		total := d.Counts[len(d.Counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", s.name, lbl, total); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.name, s.labels, formatValue(d.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.name, s.labels, total)
		return err
	}
	_, err := fmt.Fprintf(w, "%s%s %s\n", s.name, s.labels, formatValue(s.value()))
	return err
}

// HistogramSnapshot is the JSON form of a histogram series.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets map[string]uint64 `json:"buckets"` // upper bound → cumulative count
}

// Snapshot returns every series as name+labels → value. Counters and
// gauges map to float64, histograms to HistogramSnapshot. The result
// marshals cleanly to JSON.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	out := make(map[string]any)
	for _, s := range r.snapshotSeries() {
		key := s.name + s.labels
		if s.kind == kindHistogram {
			d := s.histogramData()
			hs := HistogramSnapshot{
				Count:   d.Counts[len(d.Counts)-1],
				Sum:     d.Sum,
				Buckets: make(map[string]uint64, len(d.Bounds)+1),
			}
			for i, b := range d.Bounds {
				hs.Buckets[formatValue(b)] = d.Counts[i]
			}
			hs.Buckets["+Inf"] = d.Counts[len(d.Counts)-1]
			out[key] = hs
			continue
		}
		out[key] = s.value()
	}
	return out
}
