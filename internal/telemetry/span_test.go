package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanJournalNilIsNoOp(t *testing.T) {
	var j *SpanJournal
	if j.Sampled(1) {
		t.Fatal("nil journal sampled a batch")
	}
	j.Append(Span{Batch: 1})
	if j.Len() != 0 || j.Total() != 0 || j.Rate() != 0 {
		t.Fatal("nil journal retained state")
	}
	if got := j.Spans(0); got != nil {
		t.Fatalf("nil journal returned spans: %v", got)
	}
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf, 0, -1); err != nil || buf.Len() != 0 {
		t.Fatalf("nil journal wrote output: err=%v len=%d", err, buf.Len())
	}
}

func TestSpanJournalSamplingDeterministicSubset(t *testing.T) {
	j := NewSpanJournal(64, 64)
	if j.Rate() != 64 {
		t.Fatalf("rate = %d, want 64", j.Rate())
	}
	n := 0
	for b := uint64(0); b < 64_000; b++ {
		if j.Sampled(b) != j.Sampled(b) {
			t.Fatalf("sampling of batch %d not deterministic", b)
		}
		if j.Sampled(b) {
			n++
		}
	}
	// 1/64 of 64000 = 1000 expected; the mixed hash should land within
	// a loose factor of two.
	if n < 500 || n > 2000 {
		t.Fatalf("sampled %d of 64000 batches, want ~1000", n)
	}
	all := NewSpanJournal(8, 1)
	for b := uint64(0); b < 100; b++ {
		if !all.Sampled(b) {
			t.Fatalf("rate-1 journal skipped batch %d", b)
		}
	}
}

func TestSpanJournalRingEvictsOldest(t *testing.T) {
	j := NewSpanJournal(4, 1)
	for i := 1; i <= 6; i++ {
		j.Append(Span{Batch: uint64(i)})
	}
	if j.Len() != 4 || j.Total() != 6 {
		t.Fatalf("len=%d total=%d, want 4/6", j.Len(), j.Total())
	}
	got := j.Spans(0)
	if len(got) != 4 {
		t.Fatalf("Spans(0) returned %d spans", len(got))
	}
	for i, s := range got {
		if want := uint64(i + 3); s.Batch != want || s.Seq != want {
			t.Fatalf("span %d: batch=%d seq=%d, want %d", i, s.Batch, s.Seq, want)
		}
	}
}

func TestSpanTotalNs(t *testing.T) {
	s := Span{DecodeNs: 1, QueueNs: 2, StallNs: 3, CoalesceNs: 4, ApplyNs: 5, AckNs: 6}
	if s.TotalNs() != 21 {
		t.Fatalf("TotalNs = %d, want 21", s.TotalNs())
	}
}

// TestSpanJSONLSchema pins the /spans JSONL field set: every key is
// always present, and no unknown keys appear.
func TestSpanJSONLSchema(t *testing.T) {
	j := NewSpanJournal(8, 1)
	j.Append(Span{Batch: 7, Tenant: 2, ClientSeq: 9, Records: 256,
		Outcome: SpanAcked, StartNs: 100, QueueNs: 50, ApplyNs: 25})
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf, 0, -1); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("invalid JSONL line: %v", err)
	}
	want := []string{
		"seq", "batch", "start_ns", "tenant", "client_seq", "records",
		"outcome", "decode_ns", "queue_ns", "stall_ns", "coalesce_ns",
		"apply_ns", "ack_ns",
	}
	if len(m) != len(want) {
		t.Fatalf("span JSON has %d keys, want %d: %v", len(m), len(want), m)
	}
	for _, k := range want {
		if _, ok := m[k]; !ok {
			t.Fatalf("span JSON missing pinned key %q", k)
		}
	}
}

func TestSpanJournalWriteJSONLTenantFilter(t *testing.T) {
	j := NewSpanJournal(16, 1)
	for i := 0; i < 6; i++ {
		j.Append(Span{Batch: uint64(i), Tenant: i % 2, Outcome: SpanAcked})
	}
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf, 0, 1); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatal(err)
		}
		if s.Tenant != 1 {
			t.Fatalf("tenant filter leaked tenant %d", s.Tenant)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("filtered drain has %d lines, want 3", lines)
	}
	var all strings.Builder
	if err := j.WriteJSONL(&all, 2, -1); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(all.String(), "\n"); n != 2 {
		t.Fatalf("n=2 drain has %d lines", n)
	}
}
