package telemetry

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

func TestPageTraceNilIsNoOp(t *testing.T) {
	var pt *PageTrace
	if pt.Sampled(0) || pt.Sampled(12345) {
		t.Error("nil trace sampled a page")
	}
	pt.Append(PageEvent{Page: 1})
	if pt.Len() != 0 || pt.Total() != 0 || pt.Events(0) != nil || pt.Rate() != 0 {
		t.Error("nil trace accumulated state")
	}
}

func TestPageTraceSamplingDeterministicSubset(t *testing.T) {
	pt := NewPageTrace(16, 64)
	if pt.Rate() != 64 {
		t.Fatalf("rate = %d, want 64", pt.Rate())
	}
	const pages = 1 << 16
	sampled := 0
	for p := uint64(0); p < pages; p++ {
		if pt.Sampled(p) {
			sampled++
		}
		// Determinism: a second trace with the same rate selects the
		// identical subset.
		if pt.Sampled(p) != NewPageTrace(16, 64).Sampled(p) {
			t.Fatalf("page %d sampling not deterministic", p)
		}
	}
	// The hash should select roughly 1/64 of pages (allow 2x slack).
	want := pages / 64
	if sampled < want/2 || sampled > want*2 {
		t.Errorf("sampled %d of %d pages, want ~%d", sampled, pages, want)
	}
}

func TestPageTraceRateRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {64, 64}, {100, 128},
	} {
		if got := NewPageTrace(4, tc.in).Rate(); got != tc.want {
			t.Errorf("NewPageTrace(rate %d).Rate() = %d, want %d", tc.in, got, tc.want)
		}
	}
	// Rate 1 traces every page.
	pt := NewPageTrace(4, 1)
	for p := uint64(0); p < 100; p++ {
		if !pt.Sampled(p) {
			t.Fatalf("rate-1 trace skipped page %d", p)
		}
	}
}

func TestPageTraceRingEvictsOldest(t *testing.T) {
	pt := NewPageTrace(4, 1)
	for i := 0; i < 6; i++ {
		pt.Append(PageEvent{Page: uint64(i), Kind: PageKindSample})
	}
	if pt.Len() != 4 {
		t.Fatalf("Len = %d, want 4", pt.Len())
	}
	if pt.Total() != 6 {
		t.Fatalf("Total = %d, want 6", pt.Total())
	}
	ev := pt.Events(0)
	for i, e := range ev {
		if want := uint64(i + 2); e.Page != want {
			t.Errorf("event %d: page %d, want %d (oldest evicted)", i, e.Page, want)
		}
		if want := uint64(i + 3); e.Seq != want {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, want)
		}
	}
	if got := len(pt.Events(2)); got != 2 {
		t.Errorf("Events(2) returned %d events", got)
	}
}

func TestPageTracePageEventsTimeline(t *testing.T) {
	pt := NewPageTrace(64, 1)
	pt.Append(PageEvent{Page: 7, Kind: PageKindAlloc, Tier: "fast"})
	pt.Append(PageEvent{Page: 9, Kind: PageKindAlloc, Tier: "slow"})
	pt.Append(PageEvent{Page: 7, Kind: PageKindSample, Tier: "fast"})
	pt.Append(PageEvent{Page: 7, Kind: PageKindMigration, From: "fast", To: "slow", Outcome: OutcomeSettled})
	tl := pt.PageEvents(7)
	if len(tl) != 3 {
		t.Fatalf("timeline length = %d, want 3", len(tl))
	}
	kinds := []string{PageKindAlloc, PageKindSample, PageKindMigration}
	for i, e := range tl {
		if e.Page != 7 {
			t.Errorf("timeline event %d for page %d", i, e.Page)
		}
		if e.Kind != kinds[i] {
			t.Errorf("timeline event %d kind %q, want %q", i, e.Kind, kinds[i])
		}
	}
}

func TestPageTraceWriteJSONLFilter(t *testing.T) {
	pt := NewPageTrace(64, 1)
	pt.Append(PageEvent{Page: 1, Kind: PageKindAlloc})
	pt.Append(PageEvent{Page: 2, Kind: PageKindAlloc})
	pt.Append(PageEvent{Page: 1, Kind: PageKindSample})

	var all, one strings.Builder
	if err := pt.WriteJSONL(&all, 0, -1); err != nil {
		t.Fatal(err)
	}
	if err := pt.WriteJSONL(&one, 0, 1); err != nil {
		t.Fatal(err)
	}
	countLines := func(s string) int {
		n := 0
		sc := bufio.NewScanner(strings.NewReader(s))
		for sc.Scan() {
			var e PageEvent
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
			}
			n++
		}
		return n
	}
	if got := countLines(all.String()); got != 3 {
		t.Errorf("unfiltered JSONL lines = %d, want 3", got)
	}
	if got := countLines(one.String()); got != 2 {
		t.Errorf("page-1 JSONL lines = %d, want 2", got)
	}
}
