package telemetry

import "testing"

// The registry's promise is that instrumentation costs one atomic op on
// the hot path and one predictable branch when disabled (nil metric).
// These microbenchmarks back the overhead budget in DESIGN.md §6.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

func BenchmarkTraceAppend(b *testing.B) {
	tr := NewTrace(DefaultTraceCap)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Append(Event{Kind: KindDecision, State: i % 12})
	}
}
