package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Per-tenant SLO monitoring over the serving path. Each tenant slot
// carries an SLOObjective — a latency target ("99% of batches ack
// within 2ms") and a loss target ("99.9% of accepted batches ack at
// all") — and the monitor folds every batch outcome into per-window
// rolling counters. The exposed signal is the SRE-style *burn rate*:
// the observed bad fraction divided by the objective's error budget,
// computed over several windows at once (multi-window burn-rate
// alerting) so a consumer can distinguish a fast burn (1-minute window
// far above 1: page now) from a slow leak (only the 30-minute window
// elevated: budget erodes but nothing is on fire). Burn 1.0 means the
// budget is being consumed exactly as fast as the objective allows.
//
// The clock is injected: the daemon runs the monitor on wall time,
// deterministic experiments on the machine's virtual clock, so burn
// rates in `exp latency` are exact reproducible ratios.

// SLOObjective is one tenant's service-level objective.
type SLOObjective struct {
	// Class is the display name of the SLO class ("latency", "batch").
	Class string `json:"class"`
	// LatencyNs is the per-batch end-to-end latency objective; a batch
	// acked slower than this breaches the latency SLI.
	LatencyNs int64 `json:"latency_objective_ns"`
	// LatencyTarget is the fraction of batches that must meet LatencyNs
	// (0.99 = 1% error budget).
	LatencyTarget float64 `json:"latency_target"`
	// LossTarget is the fraction of accepted batches that must ack at
	// all (rejections after queueing count against it).
	LossTarget float64 `json:"loss_target"`
}

// LatencySLO returns the default objective for the latency class:
// tight tail latency, near-zero loss.
func LatencySLO() SLOObjective {
	return SLOObjective{Class: "latency", LatencyNs: 2_000_000, LatencyTarget: 0.99, LossTarget: 0.999}
}

// BatchSLO returns the default objective for the batch (throughput)
// class: latency slack, modest loss budget.
func BatchSLO() SLOObjective {
	return SLOObjective{Class: "batch", LatencyNs: 50_000_000, LatencyTarget: 0.95, LossTarget: 0.99}
}

// DefaultSLOWindows are the burn-rate windows in clock nanoseconds:
// 1 minute (fast burn), 5 minutes, 30 minutes (slow leak).
var DefaultSLOWindows = []int64{
	int64(time.Minute), int64(5 * time.Minute), int64(30 * time.Minute),
}

// sloBuckets is the rolling resolution per window: each window is a
// ring of this many fixed-width buckets, so expiry is O(1) per observe
// and a report is one pass over 60 integers.
const sloBuckets = 60

// sloBucket is one fixed-width time slice of a window's counters.
// epoch is the absolute bucket index it currently holds; a stale epoch
// is reset on first touch rather than by a background sweeper.
type sloBucket struct {
	epoch int64
	total uint64
	slow  uint64
	lost  uint64
}

// sloWindow is one rolling window of a tenant's SLI counters.
type sloWindow struct {
	windowNs int64
	widthNs  int64
	buckets  [sloBuckets]sloBucket
}

// sloTenant is one slot's objective plus its window rings.
type sloTenant struct {
	obj     SLOObjective
	windows []sloWindow
}

// SLOMonitor folds batch outcomes into per-tenant multi-window burn
// rates. A nil *SLOMonitor is a no-op on every method, so the serving
// path hooks cost one branch when SLO monitoring is disabled. Safe for
// concurrent use; Observe is per batch (not per record), so a mutex is
// cheap relative to the work each batch represents.
type SLOMonitor struct {
	clock    func() int64
	windowNs []int64

	mu      sync.Mutex
	tenants []sloTenant
}

// NewSLOMonitor returns a monitor for len(objectives) tenant slots.
// windows nil uses DefaultSLOWindows; clock nil uses wall time
// (deterministic experiments inject the virtual clock).
func NewSLOMonitor(objectives []SLOObjective, windows []int64, clock func() int64) *SLOMonitor {
	if len(windows) == 0 {
		windows = DefaultSLOWindows
	}
	if clock == nil {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	m := &SLOMonitor{clock: clock, windowNs: append([]int64(nil), windows...)}
	m.tenants = make([]sloTenant, len(objectives))
	for i, obj := range objectives {
		m.tenants[i] = newSLOTenant(obj, m.windowNs)
	}
	return m
}

// newSLOTenant builds one slot's rings.
func newSLOTenant(obj SLOObjective, windows []int64) sloTenant {
	t := sloTenant{obj: obj, windows: make([]sloWindow, len(windows))}
	for i, w := range windows {
		width := w / sloBuckets
		if width < 1 {
			width = 1
		}
		t.windows[i] = sloWindow{windowNs: w, widthNs: width}
	}
	return t
}

// SetObjective replaces slot's objective and resets its counters — the
// runtime-registration hook (a slot re-registered under a different
// SLO class starts a fresh budget). Out-of-range slots are ignored.
// Nil-safe.
func (m *SLOMonitor) SetObjective(slot int, obj SLOObjective) {
	if m == nil || slot < 0 {
		return
	}
	m.mu.Lock()
	if slot < len(m.tenants) {
		m.tenants[slot] = newSLOTenant(obj, m.windowNs)
	}
	m.mu.Unlock()
}

// Observe folds one resolved batch into slot's windows: acked reports
// whether the batch was applied (false counts against the loss
// budget), latNs its end-to-end latency when acked. Out-of-range slots
// are ignored. Nil-safe.
func (m *SLOMonitor) Observe(slot int, latNs int64, acked bool) {
	if m == nil || slot < 0 {
		return
	}
	m.mu.Lock()
	if slot >= len(m.tenants) {
		m.mu.Unlock()
		return
	}
	t := &m.tenants[slot]
	now := m.clock()
	for i := range t.windows {
		w := &t.windows[i]
		idx := now / w.widthNs
		b := &w.buckets[idx%sloBuckets]
		if b.epoch != idx {
			*b = sloBucket{epoch: idx}
		}
		b.total++
		if !acked {
			b.lost++
		} else if latNs > t.obj.LatencyNs {
			b.slow++
		}
	}
	m.mu.Unlock()
}

// SLOWindowReport is one window's aggregated SLI counters and burn
// rates in an SLOReport. The field set is fixed (no omitted keys) so
// the /slo schema is stable for external consumers.
type SLOWindowReport struct {
	// WindowNs is the window length in clock nanoseconds.
	WindowNs int64 `json:"window_ns"`
	// Batches is the number of batches resolved inside the window;
	// LatencyBreaches the subset acked slower than the objective; Lost
	// the subset rejected after queueing.
	Batches         uint64 `json:"batches"`
	LatencyBreaches uint64 `json:"latency_breaches"`
	Lost            uint64 `json:"lost"`
	// LatencyBurn and LossBurn are the window's error-budget burn
	// rates: observed bad fraction over budgeted bad fraction, 1.0 =
	// burning exactly at budget.
	LatencyBurn float64 `json:"latency_burn"`
	LossBurn    float64 `json:"loss_burn"`
}

// SLOTenantReport is one tenant slot's entry in an SLOReport.
type SLOTenantReport struct {
	Slot int `json:"slot"`
	SLOObjective
	Windows []SLOWindowReport `json:"windows"`
}

// SLOReport is the JSON document served at /slo.
type SLOReport struct {
	// NowNs is the monitor clock at report time.
	NowNs int64 `json:"now_ns"`
	// WindowsNs lists the configured burn windows, shortest first.
	WindowsNs []int64 `json:"windows_ns"`
	// Tenants holds one entry per slot, in slot order.
	Tenants []SLOTenantReport `json:"tenants"`
}

// burn returns bad/total scaled by the inverse error budget.
func burn(bad, total uint64, target float64) float64 {
	if total == 0 {
		return 0
	}
	budget := 1 - target
	if budget <= 0 {
		budget = 1e-9 // a 100% target has no budget; any breach burns hard
	}
	return float64(bad) / float64(total) / budget
}

// Report aggregates every tenant's windows at the current clock.
// Nil-safe: a nil monitor reports an empty document.
func (m *SLOMonitor) Report() SLOReport {
	if m == nil {
		return SLOReport{Tenants: []SLOTenantReport{}, WindowsNs: []int64{}}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clock()
	rep := SLOReport{
		NowNs:     now,
		WindowsNs: append([]int64(nil), m.windowNs...),
		Tenants:   make([]SLOTenantReport, len(m.tenants)),
	}
	for slot := range m.tenants {
		t := &m.tenants[slot]
		tr := SLOTenantReport{Slot: slot, SLOObjective: t.obj, Windows: make([]SLOWindowReport, len(t.windows))}
		for i := range t.windows {
			w := &t.windows[i]
			idx := now / w.widthNs
			var wr SLOWindowReport
			wr.WindowNs = w.windowNs
			for b := range w.buckets {
				bk := &w.buckets[b]
				if bk.epoch > idx-sloBuckets && bk.epoch <= idx {
					wr.Batches += bk.total
					wr.LatencyBreaches += bk.slow
					wr.Lost += bk.lost
				}
			}
			wr.LatencyBurn = burn(wr.LatencyBreaches, wr.Batches, t.obj.LatencyTarget)
			wr.LossBurn = burn(wr.Lost, wr.Batches, t.obj.LossTarget)
			tr.Windows[i] = wr
		}
		rep.Tenants[slot] = tr
	}
	return rep
}

// WriteJSON writes the current report as one JSON document — the /slo
// response body.
func (m *SLOMonitor) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(m.Report())
}

// ParseSLOClass maps a class name to its default objective — the
// vocabulary shared by daemon flags and the register endpoint.
func ParseSLOClass(name string) (SLOObjective, error) {
	switch name {
	case "latency":
		return LatencySLO(), nil
	case "", "batch":
		return BatchSLO(), nil
	}
	return SLOObjective{}, fmt.Errorf("telemetry: unknown SLO class %q", name)
}
