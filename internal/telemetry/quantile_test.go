package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestHDRBucketsShape(t *testing.T) {
	b := HDRBuckets(1000, 16000, 4)
	if b[0] != 1000 {
		t.Fatalf("first bound = %g, want the range minimum", b[0])
	}
	if b[len(b)-1] != 16000 {
		t.Fatalf("last bound = %g, want the range maximum", b[len(b)-1])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %g <= %g", i, b[i], b[i-1])
		}
		// HDR property: relative step stays bounded by ~1/sub.
		if rel := (b[i] - b[i-1]) / b[i-1]; rel > 0.26 {
			t.Fatalf("relative step %g at bound %g exceeds 1/sub", rel, b[i])
		}
	}
	for _, bad := range [][3]float64{{0, 10, 4}, {10, 10, 4}, {1, 10, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("HDRBuckets(%v) did not panic", bad)
				}
			}()
			HDRBuckets(bad[0], bad[1], int(bad[2]))
		}()
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40})
	// Uniform fill: 10 observations per bucket.
	for b := 0; b < 4; b++ {
		for i := 0; i < 10; i++ {
			h.Observe(float64(b*10) + 5)
		}
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	// Mid-bucket interpolation: rank 15 of 40 is halfway through the
	// second bucket (10, 20].
	if got := h.Quantile(0.375); math.Abs(got-15) > 1e-9 {
		t.Errorf("Quantile(0.375) = %g, want 15", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile != 0")
	}
	h := NewHistogram([]float64{10, 20})
	if h.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	// All observations in +Inf: clamp to the last finite bound.
	h.Observe(1e9)
	h.Observe(2e9)
	if got := h.Quantile(0.5); got != 20 {
		t.Errorf("overflow-only quantile = %g, want last bound 20", got)
	}
	// Out-of-range q clamps.
	if got := h.Quantile(-1); got > h.Quantile(0.001) {
		t.Errorf("Quantile(-1) = %g did not clamp low", got)
	}
	if got := h.Quantile(2); got != 20 {
		t.Errorf("Quantile(2) = %g, want 20", got)
	}
	if QuantileFromData(HistogramData{}, 0.5) != 0 {
		t.Error("empty HistogramData quantile != 0")
	}
}

// TestHistogramQuantilesExposition covers the satellite contract: the
// four quantile series appear in both expositions, label values are
// escaped, an empty histogram renders zeros, and the text output is
// byte-stable across scrapes (the registry preserves registration
// order regardless of test shuffling — this test is run under
// -shuffle=on in CI like every other).
func TestHistogramQuantilesExposition(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramQuantiles("req_ns", "Request latency.",
		HDRBuckets(10, 1000, 2), L("stage", `q"ueue\`))
	empty := r.HistogramQuantiles("idle_ns", "Never observed.", []float64{1, 10})
	_ = empty
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE req_ns histogram",
		"# TYPE req_ns_p50 gauge",
		"# TYPE req_ns_p90 gauge",
		"# TYPE req_ns_p99 gauge",
		"# TYPE req_ns_p999 gauge",
		`req_ns_p50{stage="q\"ueue\\"}`,
		"idle_ns_p999 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// Byte-stable ordering: repeated scrapes are identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != text {
		t.Error("two scrapes of the same registry differ")
	}

	// JSON snapshot carries the same four quantiles per histogram.
	snap := r.Snapshot()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"req_ns_p50", "req_ns_p90", "req_ns_p99", "req_ns_p999", "idle_ns_p50"} {
		found := false
		for name := range snap {
			if strings.HasPrefix(name, k) {
				found = true
			}
		}
		if !found {
			t.Errorf("snapshot missing quantile series %s: %s", k, blob)
		}
	}
	var p50 float64
	for name, v := range snap {
		if strings.HasPrefix(name, "req_ns_p50") {
			p50 = v.(float64)
		}
	}
	if p50 <= 0 || p50 > 1000 {
		t.Errorf("snapshot p50 = %g, want a value inside the ladder", p50)
	}

	// Nil registry: no-op registration, usable handle.
	var nilR *Registry
	if nilR.HistogramQuantiles("x", "", nil) != nil {
		t.Error("nil registry returned a live quantiled histogram")
	}
}
