package telemetry

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTraceAppendAndOrder(t *testing.T) {
	tr := NewTrace(8)
	for i := 0; i < 5; i++ {
		tr.Append(Event{Kind: KindDecision, TimeNs: int64(i) * 10})
	}
	if tr.Len() != 5 || tr.Total() != 5 {
		t.Fatalf("len=%d total=%d", tr.Len(), tr.Total())
	}
	ev := tr.Events(0)
	for i, e := range ev {
		if e.Seq != uint64(i+1) || e.TimeNs != int64(i)*10 {
			t.Errorf("event %d = seq %d time %d", i, e.Seq, e.TimeNs)
		}
	}
	last, ok := tr.Last()
	if !ok || last.Seq != 5 {
		t.Errorf("Last = %+v, %v", last, ok)
	}
}

func TestTraceEviction(t *testing.T) {
	tr := NewTrace(4)
	for i := 1; i <= 10; i++ {
		tr.Append(Event{State: i})
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	ev := tr.Events(0)
	// Oldest retained must be state 7 (10 appended, 4 kept).
	for i, want := range []int{7, 8, 9, 10} {
		if ev[i].State != want {
			t.Errorf("event %d state = %d, want %d", i, ev[i].State, want)
		}
	}
	// A partial read returns the most recent n, oldest first.
	tail := tr.Events(2)
	if len(tail) != 2 || tail[0].State != 9 || tail[1].State != 10 {
		t.Errorf("Events(2) = %+v", tail)
	}
}

func TestTraceEmptyReads(t *testing.T) {
	tr := NewTrace(4)
	if ev := tr.Events(0); len(ev) != 0 {
		t.Errorf("empty trace returned %d events", len(ev))
	}
	if _, ok := tr.Last(); ok {
		t.Error("Last on empty trace reported an event")
	}
	var b strings.Builder
	if err := tr.WriteJSONL(&b, 0); err != nil || b.Len() != 0 {
		t.Errorf("WriteJSONL on empty trace: %q err %v", b.String(), err)
	}
}

func TestTraceWriteJSONL(t *testing.T) {
	tr := NewTrace(16)
	tr.Append(Event{Kind: KindDecision, State: 9, Reward: -0.5, Quota: 64, Threshold: 3, WinFast: 10, WinSlow: 2})
	tr.Append(Event{Kind: KindDegraded, Degraded: true, Detail: "8 empty windows"})
	var b strings.Builder
	if err := tr.WriteJSONL(&b, 0); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var events []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) != 2 {
		t.Fatalf("decoded %d events", len(events))
	}
	if events[0].Kind != KindDecision || events[0].Quota != 64 || events[0].Reward != -0.5 {
		t.Errorf("decision event = %+v", events[0])
	}
	if events[1].Kind != KindDegraded || !events[1].Degraded || events[1].Detail == "" {
		t.Errorf("degraded event = %+v", events[1])
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Append(Event{Kind: KindDecision})
			}
		}()
	}
	for i := 0; i < 100; i++ {
		tr.Events(16)
		tr.Len()
	}
	wg.Wait()
	if tr.Total() != 2000 {
		t.Errorf("total = %d, want 2000", tr.Total())
	}
	if tr.Len() != 64 {
		t.Errorf("len = %d, want 64", tr.Len())
	}
}

func TestNewSet(t *testing.T) {
	s := NewSet()
	if s.Registry == nil || s.Trace == nil {
		t.Fatal("NewSet returned nil components")
	}
}
