package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Serving latency attribution: a span journal for a deterministic
// hash-sampled subset of accepted request batches. Where the page trace
// (pagetrace.go) follows one *page* through its lifecycle, a span
// follows one *batch* through the serving pipeline and splits its
// end-to-end latency into the stages a batch actually passes through:
// frame decode, ingress-queue wait, coalesce merge, backend apply,
// migration stall attributed from the core control loop, and ack
// flush. Stage timestamps come from the server's injected clock, so in
// lockstep mode every duration is a deterministic virtual-clock
// integer and a replay yields an identical journal.
//
// Cost model: the same discipline as PageTrace — off by default (a nil
// *SpanJournal makes every hook a single predictable branch), and when
// on, the deterministic hash sampler keeps the recorded subset small
// (1/64 of batches by default) so the journal stays cheap and bounded.

// Span outcomes.
const (
	// SpanAcked: every record in the batch was applied.
	SpanAcked = "acked"
	// SpanRejected: the batch was rejected after queueing (its tenant
	// slot stopped taking traffic between submit and pump); the apply
	// stages are zero.
	SpanRejected = "rejected"
)

// Span is one batch's reconstructed latency attribution. The field set
// is fixed (no omitted keys) so the JSONL schema served by /spans is
// stable for external consumers; stages that do not apply to an
// outcome are zero.
type Span struct {
	// Seq is the journal sequence number, Batch the server-global
	// accepted-batch id the sampler keyed on.
	Seq   uint64 `json:"seq"`
	Batch uint64 `json:"batch"`
	// StartNs is the batch's enqueue timestamp on the server clock.
	StartNs int64 `json:"start_ns"`
	// Tenant is the slot the batch was submitted to, ClientSeq the
	// client's sequence number echoed on its ack.
	Tenant    int    `json:"tenant"`
	ClientSeq uint64 `json:"client_seq"`
	// Records is the batch's record count; Outcome is acked or rejected.
	Records int    `json:"records"`
	Outcome string `json:"outcome"`
	// Stage durations in clock nanoseconds. Decode is the wire-frame
	// decode (zero for direct Submit callers); Queue the ingress-queue
	// residency minus attributed stall; Stall the share of residency
	// the core control loop spent holding the machine lock (migration
	// interference); Coalesce the dequeue-to-apply merge; Apply the
	// coalesced backend pass the batch rode (shared by every batch in
	// the pass); Ack the done-callback flush after the pass.
	DecodeNs   int64 `json:"decode_ns"`
	QueueNs    int64 `json:"queue_ns"`
	StallNs    int64 `json:"stall_ns"`
	CoalesceNs int64 `json:"coalesce_ns"`
	ApplyNs    int64 `json:"apply_ns"`
	AckNs      int64 `json:"ack_ns"`
}

// TotalNs returns the span's end-to-end latency: the sum of its stage
// durations.
func (s Span) TotalNs() int64 {
	return s.DecodeNs + s.QueueNs + s.StallNs + s.CoalesceNs + s.ApplyNs + s.AckNs
}

// DefaultSpanCap is the default span-journal ring capacity.
const DefaultSpanCap = 8192

// DefaultSpanSampleRate records one batch in 64 — the same overhead
// budget as page tracing: cheap enough to leave on under load, dense
// enough that every stage shows up within seconds of traffic.
const DefaultSpanSampleRate = 64

// SpanJournal is a bounded ring of Spans for a hash-sampled subset of
// accepted batches. A nil *SpanJournal is a no-op on every method, so
// serving-path hooks cost one branch when spans are disabled. Safe for
// concurrent use.
type SpanJournal struct {
	mask uint64 // batch sampled when mixed hash & mask == 0; immutable
	rate int

	mu    sync.Mutex
	buf   []Span
	head  int
	count int
	seq   uint64
}

// NewSpanJournal returns a journal holding up to capacity spans
// (DefaultSpanCap if capacity <= 0) for roughly one batch in
// sampleRate (rounded up to a power of two; <= 1 records every batch).
func NewSpanJournal(capacity, sampleRate int) *SpanJournal {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	if sampleRate < 1 {
		sampleRate = 1
	}
	pow := 1
	for pow < sampleRate {
		pow <<= 1
	}
	return &SpanJournal{
		mask: uint64(pow - 1),
		rate: pow,
		buf:  make([]Span, capacity),
	}
}

// Rate returns the sampling rate (1 recorded batch per Rate batches).
func (j *SpanJournal) Rate() int {
	if j == nil {
		return 0
	}
	return j.rate
}

// Sampled reports whether the batch id belongs to the recorded subset.
// It is the submit-path guard: a multiply, a shift, and a compare, with
// no locking (the mask is immutable after construction). Nil-safe: a
// nil journal samples nothing.
func (j *SpanJournal) Sampled(batch uint64) bool {
	if j == nil {
		return false
	}
	// Fibonacci-style mixing spreads consecutive batch ids across the
	// hash space so the sampled subset is not one contiguous run.
	h := batch * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h&j.mask == 0
}

// Append records s, stamping its sequence number. Callers guard with
// Sampled so unsampled batches never assemble a span. Nil-safe.
func (j *SpanJournal) Append(s Span) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.seq++
	s.Seq = j.seq
	j.buf[j.head] = s
	j.head = (j.head + 1) % len(j.buf)
	if j.count < len(j.buf) {
		j.count++
	}
	j.mu.Unlock()
}

// Len returns the number of retained spans.
func (j *SpanJournal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.count
}

// Total returns the number of spans ever appended.
func (j *SpanJournal) Total() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Spans returns up to n of the most recent spans, oldest first (n <= 0
// returns everything retained). The slice is a copy.
func (j *SpanJournal) Spans(n int) []Span {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if n <= 0 || n > j.count {
		n = j.count
	}
	out := make([]Span, n)
	start := j.head - n
	if start < 0 {
		start += len(j.buf)
	}
	for i := 0; i < n; i++ {
		out[i] = j.buf[(start+i)%len(j.buf)]
	}
	return out
}

// WriteJSONL writes up to n of the most recent spans (oldest first) as
// one JSON object per line — the format served by /spans. A
// non-negative tenant filters to that slot's batches.
func (j *SpanJournal) WriteJSONL(w io.Writer, n int, tenant int) error {
	enc := json.NewEncoder(w)
	for _, s := range j.Spans(n) {
		if tenant >= 0 && s.Tenant != tenant {
			continue
		}
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}
