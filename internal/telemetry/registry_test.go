package telemetry

import (
	"encoding/json"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %g, want 2", got)
	}
	g.SetInt(7)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %g, want 7", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Trace
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	tr.Append(Event{})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || tr.Len() != 0 {
		t.Error("nil metrics accumulated state")
	}
	if r.Counter("x", "") != nil || r.Gauge("y", "") != nil || r.Histogram("z", "", nil) != nil {
		t.Error("nil registry returned live metrics")
	}
	r.GaugeFunc("f", "", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
	if r.Snapshot() != nil {
		t.Error("nil registry Snapshot != nil")
	}
}

func TestHistogramZeroObservations(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("fresh histogram count=%d sum=%g", h.Count(), h.Sum())
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 2 || len(cum) != 3 {
		t.Fatalf("buckets: %v / %v", bounds, cum)
	}
	for i, c := range cum {
		if c != 0 {
			t.Errorf("bucket %d = %d, want 0", i, c)
		}
	}
	// Exposition of an empty histogram must still be well-formed, with
	// the +Inf bucket present and every sample at 0.
	r := NewRegistry()
	r.Histogram("empty_hist", "no observations", []float64{1, 10})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`empty_hist_bucket{le="+Inf"} 0`,
		"empty_hist_sum 0",
		"empty_hist_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBucketingEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	h.Observe(-5)  // below first bound: first bucket (cumulative ≤ 1)
	h.Observe(1)   // exactly on a bound: that bucket (le is inclusive)
	h.Observe(10)  // on the middle bound
	h.Observe(11)  // between bounds
	h.Observe(100) // on the last finite bound
	h.Observe(1e9) // overflow: only the +Inf bucket

	bounds, cum := h.Buckets()
	wantBounds := []float64{1, 10, 100}
	for i := range wantBounds {
		if bounds[i] != wantBounds[i] {
			t.Fatalf("bounds = %v", bounds)
		}
	}
	wantCum := []uint64{2, 3, 5, 6} // ≤1, ≤10, ≤100, +Inf
	for i := range wantCum {
		if cum[i] != wantCum[i] {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], wantCum[i])
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if want := -5 + 1 + 10 + 11 + 100 + 1e9; h.Sum() != want {
		t.Errorf("sum = %g, want %g", h.Sum(), want)
	}
}

func TestHistogramOverflowOnly(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(math.Inf(1))
	h.Observe(2)
	_, cum := h.Buckets()
	if cum[0] != 0 {
		t.Errorf("finite bucket = %d, want 0", cum[0])
	}
	if cum[1] != 2 {
		t.Errorf("+Inf bucket = %d, want 2", cum[1])
	}
}

func TestHistogramBoundsSortedDeduped(t *testing.T) {
	h := NewHistogram([]float64{10, 1, 10, 5})
	bounds, _ := h.Buckets()
	want := []float64{1, 5, 10}
	if len(bounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", bounds, want)
	}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", bounds, want)
		}
	}
}

// promLine matches a Prometheus text-format sample or comment line.
var promLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+]+|\+Inf|-Inf|NaN))$`)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("art_migrations_total", "pages migrated", L("dir", "promote"))
	c2 := r.Counter("art_migrations_total", "pages migrated", L("dir", "demote"))
	g := r.Gauge("art_tier_pages", "resident pages", L("tier", "fast"))
	h := r.Histogram("art_latency_ns", "access latency", []float64{10, 100})
	r.GaugeFunc("art_pull", "pull-based", func() float64 { return 3.5 })
	c.Add(7)
	c2.Add(2)
	g.Set(128)
	h.Observe(50)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for _, ln := range lines {
		if !promLine.MatchString(ln) {
			t.Errorf("malformed exposition line: %q", ln)
		}
	}
	for _, want := range []string{
		"# TYPE art_migrations_total counter",
		`art_migrations_total{dir="promote"} 7`,
		`art_migrations_total{dir="demote"} 2`,
		"# TYPE art_tier_pages gauge",
		`art_tier_pages{tier="fast"} 128`,
		"# TYPE art_latency_ns histogram",
		`art_latency_ns_bucket{le="10"} 0`,
		`art_latency_ns_bucket{le="100"} 1`,
		`art_latency_ns_bucket{le="+Inf"} 1`,
		"art_latency_ns_sum 50",
		"art_latency_ns_count 1",
		"art_pull 3.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// One HELP/TYPE header per bare name, even with two labeled series.
	if n := strings.Count(out, "# TYPE art_migrations_total"); n != 1 {
		t.Errorf("TYPE header emitted %d times, want 1", n)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(3)
	r.Gauge("g", "", L("k", "v")).Set(1.5)
	h := r.Histogram("h_ns", "", []float64{10})
	h.Observe(4)
	h.Observe(400)

	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
	var round map[string]any
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if round["c_total"].(float64) != 3 {
		t.Errorf("c_total = %v", round["c_total"])
	}
	if round[`g{k="v"}`].(float64) != 1.5 {
		t.Errorf("labeled gauge = %v", round[`g{k="v"}`])
	}
	hm := round["h_ns"].(map[string]any)
	if hm["count"].(float64) != 2 {
		t.Errorf("histogram count = %v", hm["count"])
	}
	buckets := hm["buckets"].(map[string]any)
	if buckets["10"].(float64) != 1 || buckets["+Inf"].(float64) != 2 {
		t.Errorf("histogram buckets = %v", buckets)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "")
}

func TestDuplicateNameDistinctLabelsAllowed(t *testing.T) {
	r := NewRegistry()
	r.Counter("multi_total", "", L("tier", "fast"))
	r.Counter("multi_total", "", L("tier", "slow"))
}

func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "")
	g := r.Gauge("gg", "")
	h := r.Histogram("hh", "", []float64{1, 2, 4, 8})
	var wg sync.WaitGroup
	const workers, iters = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 10))
			}
		}(w)
	}
	// Scrape concurrently with the writers.
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		r.Snapshot()
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Errorf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Errorf("gauge = %g, want %d", g.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
}

// TestLabelValueEscapingRoundTrip pins the exposition-format escaping
// rules: backslash, quote, and newline are escaped (\\, \", \n), and
// nothing else is — a tab must survive raw, unlike Go's %q. The
// round trip parses the rendered line back and compares values.
func TestLabelValueEscapingRoundTrip(t *testing.T) {
	values := []string{
		`plain`,
		`back\slash`,
		"line\nfeed",
		`quo"te`,
		"all\\three\"at\nonce",
		"raw\ttab stays raw",
		`trailing backslash\`,
	}
	for _, v := range values {
		if got := UnescapeLabelValue(EscapeLabelValue(v)); got != v {
			t.Errorf("round trip %q -> %q", v, got)
		}
	}
	if got := EscapeLabelValue("a\\b\"c\nd\te"); got != "a\\\\b\\\"c\\nd\te" {
		t.Errorf("escape = %q", got)
	}

	// Full exposition round trip: render a gauge carrying every special
	// character, then parse the sample line back.
	r := NewRegistry()
	hostile := "path\\to\"x\"\nend"
	r.Gauge("esc_gauge", "", L("p", hostile)).Set(3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var sample string
	for _, ln := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(ln, "esc_gauge{") {
			sample = ln
		}
	}
	if sample == "" {
		t.Fatalf("no sample line in:\n%s", b.String())
	}
	if strings.Count(sample, "\n") != 0 {
		t.Fatalf("sample line contains a raw newline: %q", sample)
	}
	open, close := strings.Index(sample, `p="`), strings.LastIndex(sample, `"}`)
	if open < 0 || close < 0 {
		t.Fatalf("unparsable sample line %q", sample)
	}
	if got := UnescapeLabelValue(sample[open+3 : close]); got != hostile {
		t.Errorf("parsed label = %q, want %q", got, hostile)
	}
}

// TestHelpEscaping: HELP text with backslashes or newlines must render
// on one line per the exposition format.
func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("help_esc_total", "first\nsecond \\ done")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP help_esc_total first\nsecond \\ done`
	if !strings.Contains(b.String(), want) {
		t.Errorf("missing %q in:\n%s", want, b.String())
	}
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"go_goroutines", "go_heap_objects_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing runtime metric %q", want)
		}
	}
	RegisterRuntimeMetrics(nil) // must not panic
}
