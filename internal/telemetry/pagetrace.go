package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Page-lifecycle tracing: a span-style journal for a deterministic
// hash-sampled subset of pages. Where the decision trace (trace.go)
// answers "what did the agent do this period", the page trace answers
// "what happened to *this page*": when it was first touched, when PEBS
// sampled it, how it moved between the recency lists, what verdict the
// policy reached about it (and why), and how its migration went —
// attempt, retry, rollback, settled tier.
//
// Cost model: tracing is off by default (a nil *PageTrace makes every
// hook a single predictable branch), and when on, the deterministic
// hash sampler keeps the traced subset small (1/64 of pages by
// default) so the journal stays cheap and bounded while still catching
// complete lifecycles — the same pages are selected on every run, so a
// deterministic replay yields an identical journal.

// PageEvent kinds, in rough lifecycle order.
const (
	// PageKindAlloc is the page's first touch (allocation + placement).
	PageKindAlloc = "alloc"
	// PageKindSample is a PEBS sample recorded for the page.
	PageKindSample = "sample"
	// PageKindLRU is a transition between recency lists.
	PageKindLRU = "lru"
	// PageKindVerdict is a policy decision about the page (promotion
	// candidate accepted or rejected), with the reason.
	PageKindVerdict = "verdict"
	// PageKindMigration is a migration attempt outcome: settled,
	// busy, tier_full, skipped, or rolled_back.
	PageKindMigration = "migration"
	// PageKindFree is the page's unallocation during tenant
	// reclamation (drain); Tier records where it was resident.
	PageKindFree = "free"
)

// PageEvent outcomes for verdict and migration events.
const (
	// OutcomeQualified: the page met the hotness threshold and was
	// picked as a promotion candidate.
	OutcomeQualified = "qualified"
	// OutcomeRejected: the page was inspected but fell below the
	// hotness threshold.
	OutcomeRejected = "rejected"
	// OutcomeSettled: the migration succeeded; To is the settled tier.
	OutcomeSettled = "settled"
	// OutcomeDiscarded: a demotion completed as a free discard onto the
	// page's clean shadow copy (non-exclusive migration; no transfer).
	OutcomeDiscarded = "discarded"
	// OutcomeBusy: one MovePage attempt failed transiently.
	OutcomeBusy = "busy"
	// OutcomeTierFull: the destination tier had no capacity.
	OutcomeTierFull = "tier_full"
	// OutcomeQuotaFull: the page owner's fast-tier tenant quota was
	// exhausted (multi-tenant machines only).
	OutcomeQuotaFull = "quota_full"
	// OutcomeSkipped: the policy abandoned the page after exhausting
	// its retries.
	OutcomeSkipped = "skipped"
	// OutcomeRolledBack: a demotion was undone because its paired
	// promotion failed permanently.
	OutcomeRolledBack = "rolled_back"
	// OutcomeRecorded: a PEBS sample for the page landed in the ring.
	OutcomeRecorded = "recorded"
	// OutcomeRingDropped: a PEBS sample for the page was taken but lost
	// to ring-buffer overflow before the policy could drain it.
	OutcomeRingDropped = "ring_dropped"
)

// PageEvent is one record in a page's lifecycle journal. The field set
// is fixed (no omitted keys) so the JSONL schema served by /pagetrace
// is stable for external consumers; fields that do not apply to a kind
// are zero/empty.
type PageEvent struct {
	Seq    uint64 `json:"seq"`
	TimeNs int64  `json:"time_ns"`
	Page   uint64 `json:"page"`
	Kind   string `json:"kind"`
	// Tier is the page's tier at event time (alloc/sample), From/To the
	// source and destination of a transition (LRU lists or migration
	// tiers).
	Tier string `json:"tier"`
	From string `json:"from"`
	To   string `json:"to"`
	// Count and Threshold capture the hotness comparison behind a
	// verdict (EMA count vs the agent's current threshold).
	Count     uint32 `json:"count"`
	Threshold uint32 `json:"threshold"`
	// Outcome is the verdict/migration outcome; Reason is free-form
	// context ("count 5 >= threshold 2", "retries exhausted", ...).
	Outcome string `json:"outcome"`
	Reason  string `json:"reason"`
}

// DefaultPageTraceCap is the default page-trace ring capacity.
const DefaultPageTraceCap = 8192

// DefaultPageSampleRate traces one page in 64 — the issue's overhead
// budget for always-on lifecycle tracing.
const DefaultPageSampleRate = 64

// PageTrace is a bounded ring of PageEvents for a hash-sampled page
// subset. A nil *PageTrace is a no-op on every method, so hooks cost
// one branch when tracing is disabled. Safe for concurrent use.
type PageTrace struct {
	mask uint64 // page sampled when mixed hash & mask == 0; immutable
	rate int

	mu    sync.Mutex
	buf   []PageEvent
	head  int
	count int
	seq   uint64
}

// NewPageTrace returns a page trace holding up to capacity events
// (DefaultPageTraceCap if capacity <= 0) for roughly one page in
// sampleRate (rounded up to a power of two; <= 1 traces every page).
func NewPageTrace(capacity, sampleRate int) *PageTrace {
	if capacity <= 0 {
		capacity = DefaultPageTraceCap
	}
	if sampleRate < 1 {
		sampleRate = 1
	}
	pow := 1
	for pow < sampleRate {
		pow <<= 1
	}
	return &PageTrace{
		mask: uint64(pow - 1),
		rate: pow,
		buf:  make([]PageEvent, capacity),
	}
}

// Rate returns the sampling rate (1 event-traced page per Rate pages).
func (t *PageTrace) Rate() int {
	if t == nil {
		return 0
	}
	return t.rate
}

// Sampled reports whether page belongs to the traced subset. It is the
// hot-path guard: a multiply, a shift, and a compare, with no locking
// (the mask is immutable after construction). Nil-safe: a nil trace
// samples nothing.
func (t *PageTrace) Sampled(page uint64) bool {
	if t == nil {
		return false
	}
	// Fibonacci-style mixing spreads consecutive page numbers across
	// the hash space so the traced subset is not one contiguous run.
	h := page * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h&t.mask == 0
}

// Append records e, stamping its sequence number. Callers guard with
// Sampled so unsampled pages never construct an event. Nil-safe.
func (t *PageTrace) Append(e PageEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	t.buf[t.head] = e
	t.head = (t.head + 1) % len(t.buf)
	if t.count < len(t.buf) {
		t.count++
	}
	t.mu.Unlock()
}

// Len returns the number of retained events.
func (t *PageTrace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Total returns the number of events ever appended.
func (t *PageTrace) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Events returns up to n of the most recent events, oldest first
// (n <= 0 returns everything retained). The slice is a copy.
func (t *PageTrace) Events(n int) []PageEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.count {
		n = t.count
	}
	out := make([]PageEvent, n)
	start := t.head - n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < n; i++ {
		out[i] = t.buf[(start+i)%len(t.buf)]
	}
	return out
}

// PageEvents returns every retained event for one page, oldest first —
// the page's reconstructed lifecycle timeline.
func (t *PageTrace) PageEvents(page uint64) []PageEvent {
	var out []PageEvent
	for _, e := range t.Events(0) {
		if e.Page == page {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSONL writes up to n of the most recent events (oldest first) as
// one JSON object per line — the format served by /pagetrace. A
// non-negative page filters to that page's events.
func (t *PageTrace) WriteJSONL(w io.Writer, n int, page int64) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events(n) {
		if page >= 0 && e.Page != uint64(page) {
			continue
		}
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
