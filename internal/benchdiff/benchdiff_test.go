package benchdiff

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleA = `# Figure X
# paper: something

== Normalized runtime ==
system          S1     S2
---------------------------
MEMTIS       0.550  0.748
ArtMem       0.569  0.738
note: a note

== DRAM access ratio ==
system          S1     S2
---------------------------
MEMTIS       0.923  0.756
ArtMem       0.893  0.768
`

func TestParse(t *testing.T) {
	tables, err := Parse(strings.NewReader(sampleA))
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("parsed %d tables", len(tables))
	}
	rt := tables[0]
	if rt.Title != "Normalized runtime" {
		t.Errorf("title = %q", rt.Title)
	}
	if len(rt.RowOrder) != 2 || rt.RowOrder[0] != "MEMTIS" {
		t.Errorf("rows = %v", rt.RowOrder)
	}
	cells := rt.Rows["ArtMem"]
	if len(cells) != 2 || cells[0] != 0.569 || cells[1] != 0.738 {
		t.Errorf("ArtMem cells = %v", cells)
	}
}

func TestParsePercentAndMixedCells(t *testing.T) {
	src := `== Overheads ==
workload  sampling  bytes
--------------------------
XSBench   1.44%     1344
`
	tables, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	cells := tables[0].Rows["XSBench"]
	if len(cells) != 2 || cells[0] != 1.44 || cells[1] != 1344 {
		t.Errorf("cells = %v", cells)
	}
}

func TestCompareFindsChangedCells(t *testing.T) {
	b := strings.Replace(sampleA, "0.569", "0.900", 1)
	ta, _ := Parse(strings.NewReader(sampleA))
	tb, _ := Parse(strings.NewReader(b))
	deltas := Compare(ta, tb, 0.10)
	if len(deltas) != 1 {
		t.Fatalf("deltas = %+v", deltas)
	}
	d := deltas[0]
	if d.Table != "Normalized runtime" || d.Row != "ArtMem" || d.Col != 0 {
		t.Errorf("delta = %+v", d)
	}
	if d.Old != 0.569 || d.New != 0.900 {
		t.Errorf("values = %g -> %g", d.Old, d.New)
	}
	// Below threshold: nothing.
	if ds := Compare(ta, tb, 0.99); len(ds) != 0 {
		t.Errorf("high threshold still found %v", ds)
	}
	// Identical sets: nothing.
	if ds := Compare(ta, ta, 0); len(ds) != 0 {
		t.Errorf("self-compare found %v", ds)
	}
}

func TestCompareMissingTableAndRow(t *testing.T) {
	ta, _ := Parse(strings.NewReader(sampleA))
	short := strings.SplitAfter(sampleA, "note: a note\n")[0]
	tbv, _ := Parse(strings.NewReader(short))
	deltas := Compare(ta, tbv, 0)
	found := false
	for _, d := range deltas {
		if d.Col == -1 && strings.Contains(d.Row, "missing") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing table not reported: %+v", deltas)
	}
}

func TestRelChange(t *testing.T) {
	if got := (Delta{Old: 2, New: 3}).RelChange(); got != 0.5 {
		t.Errorf("RelChange = %g", got)
	}
	if got := (Delta{Old: 0, New: 3}).RelChange(); got != 1 {
		t.Errorf("zero-old RelChange = %g", got)
	}
	if got := (Delta{Old: 0, New: 0}).RelChange(); got != 0 {
		t.Errorf("zero-zero RelChange = %g", got)
	}
	if got := (Delta{Old: 4, New: 2}).RelChange(); got != 0.5 {
		t.Errorf("negative RelChange = %g", got)
	}
}

func TestFormat(t *testing.T) {
	out := Format(nil)
	if !strings.Contains(out, "no differences") {
		t.Errorf("empty format = %q", out)
	}
	out = Format([]Delta{{Table: "T", Row: "r", Col: 1, Old: 1, New: 2}})
	if !strings.Contains(out, "1 -> 2") || !strings.Contains(out, "+100.0%") {
		t.Errorf("format = %q", out)
	}
}

// The parser must handle every real results file the harness writes.
func TestParseRealBenchResults(t *testing.T) {
	files, _ := filepath.Glob("../../bench_results/*.txt")
	if len(files) == 0 {
		t.Skip("no bench_results present")
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := Parse(strings.NewReader(string(data)))
		if err != nil {
			t.Errorf("%s: %v", f, err)
		}
		if len(tables) == 0 {
			t.Errorf("%s: no tables parsed", f)
		}
	}
}
