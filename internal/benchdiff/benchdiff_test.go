package benchdiff

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleA = `# Figure X
# paper: something

== Normalized runtime ==
system          S1     S2
---------------------------
MEMTIS       0.550  0.748
ArtMem       0.569  0.738
note: a note

== DRAM access ratio ==
system          S1     S2
---------------------------
MEMTIS       0.923  0.756
ArtMem       0.893  0.768
`

func TestParse(t *testing.T) {
	tables, err := Parse(strings.NewReader(sampleA))
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("parsed %d tables", len(tables))
	}
	rt := tables[0]
	if rt.Title != "Normalized runtime" {
		t.Errorf("title = %q", rt.Title)
	}
	if len(rt.RowOrder) != 2 || rt.RowOrder[0] != "MEMTIS" {
		t.Errorf("rows = %v", rt.RowOrder)
	}
	cells := rt.Rows["ArtMem"]
	if len(cells) != 2 || cells[0] != 0.569 || cells[1] != 0.738 {
		t.Errorf("ArtMem cells = %v", cells)
	}
}

func TestParsePercentAndMixedCells(t *testing.T) {
	src := `== Overheads ==
workload  sampling  bytes
--------------------------
XSBench   1.44%     1344
`
	tables, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	cells := tables[0].Rows["XSBench"]
	if len(cells) != 2 || cells[0] != 1.44 || cells[1] != 1344 {
		t.Errorf("cells = %v", cells)
	}
}

func TestCompareFindsChangedCells(t *testing.T) {
	b := strings.Replace(sampleA, "0.569", "0.900", 1)
	ta, _ := Parse(strings.NewReader(sampleA))
	tb, _ := Parse(strings.NewReader(b))
	deltas := Compare(ta, tb, 0.10)
	if len(deltas) != 1 {
		t.Fatalf("deltas = %+v", deltas)
	}
	d := deltas[0]
	if d.Table != "Normalized runtime" || d.Row != "ArtMem" || d.Col != 0 {
		t.Errorf("delta = %+v", d)
	}
	if d.Old != 0.569 || d.New != 0.900 {
		t.Errorf("values = %g -> %g", d.Old, d.New)
	}
	// Below threshold: nothing.
	if ds := Compare(ta, tb, 0.99); len(ds) != 0 {
		t.Errorf("high threshold still found %v", ds)
	}
	// Identical sets: nothing.
	if ds := Compare(ta, ta, 0); len(ds) != 0 {
		t.Errorf("self-compare found %v", ds)
	}
}

func TestCompareMissingTableAndRow(t *testing.T) {
	ta, _ := Parse(strings.NewReader(sampleA))
	short := strings.SplitAfter(sampleA, "note: a note\n")[0]
	tbv, _ := Parse(strings.NewReader(short))
	deltas := Compare(ta, tbv, 0)
	found := false
	for _, d := range deltas {
		if d.Col == -1 && strings.Contains(d.Row, "missing") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing table not reported: %+v", deltas)
	}
}

func TestRelChange(t *testing.T) {
	if got := (Delta{Old: 2, New: 3}).RelChange(); got != 0.5 {
		t.Errorf("RelChange = %g", got)
	}
	if got := (Delta{Old: 0, New: 3}).RelChange(); got != 1 {
		t.Errorf("zero-old RelChange = %g", got)
	}
	if got := (Delta{Old: 0, New: 0}).RelChange(); got != 0 {
		t.Errorf("zero-zero RelChange = %g", got)
	}
	if got := (Delta{Old: 4, New: 2}).RelChange(); got != 0.5 {
		t.Errorf("negative RelChange = %g", got)
	}
}

func TestFormat(t *testing.T) {
	out := Format(nil)
	if !strings.Contains(out, "no differences") {
		t.Errorf("empty format = %q", out)
	}
	out = Format([]Delta{{Table: "T", Row: "r", Col: 1, Old: 1, New: 2}})
	if !strings.Contains(out, "1 -> 2") || !strings.Contains(out, "+100.0%") {
		t.Errorf("format = %q", out)
	}
}

// The parser must handle every real results file the harness writes.
func TestParseRealBenchResults(t *testing.T) {
	files, _ := filepath.Glob("../../bench_results/*.txt")
	if len(files) == 0 {
		t.Skip("no bench_results present")
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := Parse(strings.NewReader(string(data)))
		if err != nil {
			t.Errorf("%s: %v", f, err)
		}
		if len(tables) == 0 {
			t.Errorf("%s: no tables parsed", f)
		}
	}
}

// Hand-written BENCH JSON fixtures for the regression gate: oldBench is
// the baseline, variants below inject a regression, drop a benchmark,
// and add one.
const oldBench = `{
  "revision": "aaaaaaaaaaaa",
  "go_version": "go1.24.0",
  "timestamp": "2026-01-01T00:00:00Z",
  "quick": true,
  "experiments": [
    {
      "id": "fig7",
      "title": "End-to-end comparison",
      "paper": "Figure 7",
      "duration_ms": 1200,
      "tables": [
        {
          "Title": "Normalized runtime",
          "Header": ["system", "S1", "S2"],
          "Rows": [
            ["MEMTIS", "0.550", "0.748"],
            ["ArtMem", "0.569", "0.738"]
          ]
        }
      ]
    },
    {
      "id": "table2",
      "title": "Overheads",
      "paper": "Table 2",
      "duration_ms": 300,
      "tables": [
        {
          "Title": "Overheads",
          "Header": ["workload", "sampling"],
          "Rows": [["XSBench", "1.44%"]]
        }
      ]
    }
  ]
}`

// oneExpBench is oldBench with the table2 experiment removed.
const oneExpBench = `{
  "revision": "bbbbbbbbbbbb",
  "go_version": "go1.24.0",
  "timestamp": "2026-01-02T00:00:00Z",
  "quick": true,
  "experiments": [
    {
      "id": "fig7",
      "title": "End-to-end comparison",
      "paper": "Figure 7",
      "duration_ms": 1100,
      "tables": [
        {
          "Title": "Normalized runtime",
          "Header": ["system", "S1", "S2"],
          "Rows": [
            ["MEMTIS", "0.550", "0.748"],
            ["ArtMem", "0.569", "0.738"]
          ]
        }
      ]
    }
  ]
}`

func mustParseBench(t *testing.T, src string) []Table {
	t.Helper()
	tables, err := ParseBenchJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return tables
}

func TestParseBenchJSON(t *testing.T) {
	tables := mustParseBench(t, oldBench)
	if len(tables) != 2 {
		t.Fatalf("parsed %d tables, want 2", len(tables))
	}
	if tables[0].Title != "fig7: Normalized runtime" {
		t.Errorf("title = %q, want experiment-prefixed", tables[0].Title)
	}
	cells := tables[0].Rows["ArtMem"]
	if len(cells) != 2 || cells[0] != 0.569 || cells[1] != 0.738 {
		t.Errorf("ArtMem cells = %v", cells)
	}
	if cells := tables[1].Rows["XSBench"]; len(cells) != 1 || cells[0] != 1.44 {
		t.Errorf("percent cell = %v", cells)
	}

	if _, err := ParseBenchJSON(strings.NewReader("not json")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestBenchJSONRegressionDetected(t *testing.T) {
	// Inject a >10% regression into one cell.
	regressed := strings.Replace(oldBench, `"0.569"`, `"0.700"`, 1)
	deltas := Compare(mustParseBench(t, oldBench), mustParseBench(t, regressed), 0.10)
	regs := Regressions(deltas)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the injected cell", regs)
	}
	d := regs[0]
	if d.Table != "fig7: Normalized runtime" || d.Row != "ArtMem" || d.Col != 0 {
		t.Errorf("delta = %+v", d)
	}

	// A <10% drift passes.
	small := strings.Replace(oldBench, `"0.569"`, `"0.590"`, 1)
	if regs := Regressions(Compare(mustParseBench(t, oldBench), mustParseBench(t, small), 0.10)); len(regs) != 0 {
		t.Errorf("sub-threshold drift failed the gate: %+v", regs)
	}

	// Identical results pass.
	if regs := Regressions(Compare(mustParseBench(t, oldBench), mustParseBench(t, oldBench), 0.10)); len(regs) != 0 {
		t.Errorf("self-compare failed the gate: %+v", regs)
	}
}

func TestBenchJSONMissingBenchmarkFails(t *testing.T) {
	// The table2 experiment is gone from the new side: a benchmark
	// that disappeared is a regression.
	deltas := Compare(mustParseBench(t, oldBench), mustParseBench(t, oneExpBench), 0.10)
	regs := Regressions(deltas)
	if len(regs) != 1 || !strings.Contains(regs[0].Row, "missing in new") {
		t.Fatalf("missing benchmark not failed: %+v", regs)
	}
	if regs[0].Table != "table2: Overheads" {
		t.Errorf("missing table = %q", regs[0].Table)
	}
}

func TestBenchJSONAddedBenchmarkPasses(t *testing.T) {
	// Run the comparison the other direction: the new side has an extra
	// experiment. It is reported as a delta but not a regression.
	deltas := Compare(mustParseBench(t, oneExpBench), mustParseBench(t, oldBench), 0.10)
	var addition *Delta
	for i := range deltas {
		if deltas[i].IsAddition() {
			addition = &deltas[i]
		}
	}
	if addition == nil {
		t.Fatalf("added benchmark not reported: %+v", deltas)
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Errorf("added benchmark failed the gate: %+v", regs)
	}
}

func TestBenchJSONAddedRowPasses(t *testing.T) {
	extra := strings.Replace(oldBench,
		`["ArtMem", "0.569", "0.738"]`,
		`["ArtMem", "0.569", "0.738"], ["Nimble", "0.9", "0.9"]`, 1)
	deltas := Compare(mustParseBench(t, oldBench), mustParseBench(t, extra), 0.10)
	if len(deltas) != 1 || !deltas[0].IsAddition() {
		t.Fatalf("added row deltas = %+v", deltas)
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Errorf("added row failed the gate: %+v", regs)
	}
}
