// Package benchdiff parses the text tables written by the benchmark
// harness (bench_results/*.txt) and compares two result sets cell by
// cell — the regression-tracking companion for the reproduction: run the
// suite before and after a model change, then diff the shapes.
package benchdiff

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Table is a parsed result table: a header, row labels, and numeric
// cells (NaN-free; non-numeric cells are skipped).
type Table struct {
	Title  string
	Header []string
	// Rows maps a row label (built from its leading non-numeric cells)
	// to its numeric cells in column order.
	Rows map[string][]float64
	// RowOrder preserves the file's row order.
	RowOrder []string
}

// Parse reads every table from one rendered results file.
func Parse(r io.Reader) ([]Table, error) {
	sc := bufio.NewScanner(r)
	var tables []Table
	var cur *Table
	flush := func() {
		if cur != nil && len(cur.Rows) > 0 {
			tables = append(tables, *cur)
		}
		cur = nil
	}
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), " ")
		switch {
		case strings.HasPrefix(line, "== ") && strings.HasSuffix(line, " =="):
			flush()
			cur = &Table{
				Title: strings.TrimSuffix(strings.TrimPrefix(line, "== "), " =="),
				Rows:  map[string][]float64{},
			}
		case cur == nil || line == "" || strings.HasPrefix(line, "#") ||
			strings.HasPrefix(line, "note:") || strings.HasPrefix(line, "---"):
			continue
		case cur.Header == nil:
			cur.Header = strings.Fields(line)
		default:
			label, nums := splitRow(line)
			if label == "" && len(nums) == 0 {
				continue
			}
			if _, dup := cur.Rows[label]; dup {
				label = fmt.Sprintf("%s#%d", label, len(cur.RowOrder))
			}
			cur.Rows[label] = nums
			cur.RowOrder = append(cur.RowOrder, label)
		}
	}
	flush()
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tables, nil
}

// benchJSON mirrors the subset of artbench's BENCH_<revision>.json
// that the comparison consumes. Run metadata (revision, timestamp,
// durations) is deliberately ignored: the simulation is deterministic,
// so only the result tables are diffed, and wall-clock noise never
// trips the regression gate.
type benchJSON struct {
	Experiments []struct {
		ID     string `json:"id"`
		Tables []struct {
			Title  string
			Header []string
			Rows   [][]string
		} `json:"tables"`
	} `json:"experiments"`
}

// ParseBenchJSON reads every result table from one BENCH_<revision>.json
// file written by artbench. Table titles are prefixed with the owning
// experiment ID so equally-titled tables from different experiments
// stay distinct.
func ParseBenchJSON(r io.Reader) ([]Table, error) {
	var bf benchJSON
	if err := json.NewDecoder(r).Decode(&bf); err != nil {
		return nil, fmt.Errorf("benchdiff: bad BENCH json: %w", err)
	}
	var tables []Table
	for _, exp := range bf.Experiments {
		for _, src := range exp.Tables {
			t := Table{
				Title:  exp.ID + ": " + src.Title,
				Header: src.Header,
				Rows:   map[string][]float64{},
			}
			for _, row := range src.Rows {
				label, nums := splitRow(strings.Join(row, " "))
				if label == "" && len(nums) == 0 {
					continue
				}
				if _, dup := t.Rows[label]; dup {
					label = fmt.Sprintf("%s#%d", label, len(t.RowOrder))
				}
				t.Rows[label] = nums
				t.RowOrder = append(t.RowOrder, label)
			}
			if len(t.Rows) > 0 {
				tables = append(tables, t)
			}
		}
	}
	return tables, nil
}

// splitRow separates a table row into its textual label (the leading
// cells that do not parse as numbers) and its numeric cells.
func splitRow(line string) (string, []float64) {
	fields := strings.Fields(line)
	var labelParts []string
	var nums []float64
	seenNum := false
	for _, f := range fields {
		clean := strings.TrimSuffix(f, "%")
		if v, err := strconv.ParseFloat(clean, 64); err == nil {
			nums = append(nums, v)
			seenNum = true
		} else if !seenNum {
			labelParts = append(labelParts, f)
		}
		// Non-numeric tokens after the first number (sparklines, units)
		// are ignored.
	}
	return strings.Join(labelParts, " "), nums
}

// Delta is one cell-level difference between two result sets.
type Delta struct {
	Table string
	Row   string
	Col   int
	Old   float64
	New   float64
}

// RelChange returns the relative change (new-old)/|old|; ±Inf-safe: a
// zero old value with a different new value reports 1 (100%).
func (d Delta) RelChange() float64 {
	if d.Old == 0 {
		if d.New == 0 {
			return 0
		}
		return 1
	}
	rel := (d.New - d.Old) / d.Old
	if rel < 0 {
		return -rel
	}
	return rel
}

// Compare diffs two parsed result sets and returns the cells whose
// relative change exceeds threshold, sorted by decreasing change.
// Tables/rows present on only one side are reported with the missing
// side's cells absent (Old or New = NaN is avoided; such rows are
// returned as a Delta with Col -1 and zero values).
func Compare(old, new []Table, threshold float64) []Delta {
	idx := func(ts []Table) map[string]Table {
		m := map[string]Table{}
		for _, t := range ts {
			m[t.Title] = t
		}
		return m
	}
	oldIdx, newIdx := idx(old), idx(new)
	var out []Delta
	for title, ot := range oldIdx {
		nt, ok := newIdx[title]
		if !ok {
			out = append(out, Delta{Table: title, Row: "<table missing in new>", Col: -1})
			continue
		}
		for row, ocells := range ot.Rows {
			ncells, ok := nt.Rows[row]
			if !ok {
				out = append(out, Delta{Table: title, Row: row + " <row missing in new>", Col: -1})
				continue
			}
			n := len(ocells)
			if len(ncells) < n {
				n = len(ncells)
			}
			for c := 0; c < n; c++ {
				d := Delta{Table: title, Row: row, Col: c, Old: ocells[c], New: ncells[c]}
				if d.RelChange() > threshold {
					out = append(out, d)
				}
			}
		}
		for row := range nt.Rows {
			if _, ok := ot.Rows[row]; !ok {
				out = append(out, Delta{Table: title, Row: row + " <row missing in old>", Col: -1})
			}
		}
	}
	for title := range newIdx {
		if _, ok := oldIdx[title]; !ok {
			out = append(out, Delta{Table: title, Row: "<table missing in old>", Col: -1})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Col == -1 || out[j].Col == -1 {
			return out[i].Col == -1 && out[j].Col != -1
		}
		return out[i].RelChange() > out[j].RelChange()
	})
	return out
}

// IsAddition reports whether d records a table or row present only in
// the new result set — a newly added benchmark rather than a
// regression.
func (d Delta) IsAddition() bool {
	return d.Col == -1 && strings.HasSuffix(d.Row, "missing in old>")
}

// Regressions filters ds down to the deltas a regression gate should
// fail on: every above-threshold change plus tables and rows that
// disappeared. Pure additions (new benchmarks with no baseline) are
// excluded — they are reported, not failed, so adding an experiment
// does not require regenerating the baseline in the same change.
func Regressions(ds []Delta) []Delta {
	var out []Delta
	for _, d := range ds {
		if !d.IsAddition() {
			out = append(out, d)
		}
	}
	return out
}

// Format renders a delta list as aligned text.
func Format(ds []Delta) string {
	if len(ds) == 0 {
		return "no differences above threshold\n"
	}
	var b strings.Builder
	for _, d := range ds {
		if d.Col == -1 {
			fmt.Fprintf(&b, "%-40s %s\n", d.Table, d.Row)
			continue
		}
		fmt.Fprintf(&b, "%-40s %-20s col %d: %g -> %g (%+.1f%%)\n",
			d.Table, d.Row, d.Col, d.Old, d.New,
			100*(d.New-d.Old)/nonZero(d.Old))
	}
	return b.String()
}

func nonZero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}
