// Package trace records workload access traces to a compact binary
// format and replays them as workloads. Trace files make experiments
// portable and exactly repeatable — the same role the paper's recorded
// application runs play: capture once, replay under every policy.
//
// Format (little-endian):
//
//	header:  magic "ATRC" | version u32 | footprint i64 | count i64 |
//	         name length u16 | name bytes
//	records: delta-encoded accesses. Each record starts with
//	         varint(v): when v&1 == 0, v = zigzag(addrDelta)<<2 | w<<1
//	         (the common case); when v&1 == 1, v = w<<1 | 1 and the
//	         absolute address follows as its own varint (the escape for
//	         deltas too large to zigzag into 62 bits).
//
// Delta+varint encoding keeps sequential traces near one to two bytes
// per access.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"artmem/internal/workloads"
)

const (
	magic   = "ATRC"
	version = 1
)

// ErrBadFormat reports a malformed trace stream.
var ErrBadFormat = errors.New("trace: bad format")

// Writer streams accesses into a trace file.
type Writer struct {
	w        *bufio.Writer
	prevAddr uint64
	count    int64
	// countPatcher rewrites the record count on Close when the
	// underlying writer supports seeking; otherwise the declared count
	// must be supplied up front via NewWriterCount.
	buf [binary.MaxVarintLen64 + 1]byte
}

// WriteHeader emits the trace header. count may be 0 when unknown; the
// reader then reads to EOF.
func WriteHeader(w io.Writer, name string, footprint, count int64) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	hdr := make([]byte, 4+8+8+2)
	binary.LittleEndian.PutUint32(hdr[0:], version)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(footprint))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(count))
	binary.LittleEndian.PutUint16(hdr[20:], uint16(len(name)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := io.WriteString(w, name)
	return err
}

// NewWriter starts a trace on w with the given workload name and
// footprint. Call Append for each access, then Flush.
func NewWriter(w io.Writer, name string, footprint int64) (*Writer, error) {
	if err := WriteHeader(w, name, footprint, 0); err != nil {
		return nil, err
	}
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}, nil
}

// Append records one access.
func (t *Writer) Append(addr uint64, write bool) error {
	delta := int64(addr) - int64(t.prevAddr)
	t.prevAddr = addr
	zig := uint64((delta << 1) ^ (delta >> 63))
	t.count++
	if zig < 1<<62 {
		// Common case: delta record.
		n := binary.PutUvarint(t.buf[:], zig<<2|boolBit(write)<<1)
		_, err := t.w.Write(t.buf[:n])
		return err
	}
	// Escape: the absolute address follows.
	n := binary.PutUvarint(t.buf[:], boolBit(write)<<1|1)
	if _, err := t.w.Write(t.buf[:n]); err != nil {
		return err
	}
	n = binary.PutUvarint(t.buf[:], addr)
	_, err := t.w.Write(t.buf[:n])
	return err
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Count returns the number of accesses appended so far.
func (t *Writer) Count() int64 { return t.count }

// Flush drains buffered records to the underlying writer.
func (t *Writer) Flush() error { return t.w.Flush() }

// Record captures an entire workload into w and returns the number of
// accesses written. The workload is closed afterwards.
func Record(w io.Writer, src workloads.Workload) (int64, error) {
	defer src.Close()
	tw, err := NewWriter(w, src.Name(), src.FootprintBytes())
	if err != nil {
		return 0, err
	}
	for {
		batch, ok := src.Next()
		if !ok {
			break
		}
		for _, a := range batch {
			if err := tw.Append(a.Addr, a.Write); err != nil {
				return tw.Count(), err
			}
		}
	}
	return tw.Count(), tw.Flush()
}

// Header describes a trace stream.
type Header struct {
	Name      string
	Footprint int64
	// Count is the declared record count; 0 means unknown (read to EOF).
	Count int64
}

// ReadHeader parses a trace header.
func ReadHeader(r io.Reader) (Header, error) {
	var h Header
	buf := make([]byte, 4+4+8+8+2)
	if _, err := io.ReadFull(r, buf); err != nil {
		return h, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(buf[:4]) != magic {
		return h, fmt.Errorf("%w: magic %q", ErrBadFormat, buf[:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != version {
		return h, fmt.Errorf("%w: version %d", ErrBadFormat, v)
	}
	h.Footprint = int64(binary.LittleEndian.Uint64(buf[8:]))
	h.Count = int64(binary.LittleEndian.Uint64(buf[16:]))
	nameLen := int(binary.LittleEndian.Uint16(buf[24:]))
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return h, fmt.Errorf("%w: name: %v", ErrBadFormat, err)
	}
	h.Name = string(name)
	if h.Footprint <= 0 {
		return h, fmt.Errorf("%w: footprint %d", ErrBadFormat, h.Footprint)
	}
	return h, nil
}

// Reader replays a trace as a Workload.
type Reader struct {
	h        Header
	r        *bufio.Reader
	prevAddr uint64
	read     int64
	buf      []workloads.Access
	done     bool
	err      error
}

// NewReader opens a trace stream for replay.
func NewReader(r io.Reader) (*Reader, error) {
	h, err := ReadHeader(r)
	if err != nil {
		return nil, err
	}
	return &Reader{
		h:   h,
		r:   bufio.NewReaderSize(r, 1<<16),
		buf: make([]workloads.Access, 0, workloads.BatchSize),
	}, nil
}

var _ workloads.Workload = (*Reader)(nil)

// Name implements workloads.Workload.
func (t *Reader) Name() string { return t.h.Name }

// FootprintBytes implements workloads.Workload.
func (t *Reader) FootprintBytes() int64 { return t.h.Footprint }

// Header returns the parsed trace header.
func (t *Reader) Header() Header { return t.h }

// Err returns the first decode error encountered, if any. A truncated
// or corrupt stream ends the workload and is reported here.
func (t *Reader) Err() error { return t.err }

// Next implements workloads.Workload.
func (t *Reader) Next() ([]workloads.Access, bool) {
	if t.done {
		return nil, false
	}
	t.buf = t.buf[:0]
	for len(t.buf) < cap(t.buf) {
		if t.h.Count > 0 && t.read >= t.h.Count {
			t.done = true
			break
		}
		u, err := binary.ReadUvarint(t.r)
		if err != nil {
			t.done = true
			if err != io.EOF {
				t.err = fmt.Errorf("%w: record %d: %v", ErrBadFormat, t.read, err)
			} else if t.h.Count > 0 && t.read < t.h.Count {
				t.err = fmt.Errorf("%w: truncated at record %d of %d",
					ErrBadFormat, t.read, t.h.Count)
			}
			break
		}
		var addr uint64
		write := u>>1&1 == 1
		if u&1 == 1 {
			// Escape record: absolute address follows.
			abs, err := binary.ReadUvarint(t.r)
			if err != nil {
				t.done = true
				t.err = fmt.Errorf("%w: record %d: escape: %v", ErrBadFormat, t.read, err)
				break
			}
			addr = abs
		} else {
			z := u >> 2
			delta := int64(z>>1) ^ -int64(z&1)
			addr = uint64(int64(t.prevAddr) + delta)
		}
		t.prevAddr = addr
		t.buf = append(t.buf, workloads.Access{Addr: addr, Write: write})
		t.read++
	}
	if len(t.buf) == 0 {
		return nil, false
	}
	return t.buf, true
}

// Close implements workloads.Workload.
func (t *Reader) Close() { t.done = true }

// newBufio is a small indirection for tests that hand-build writers.
func newBufio(w io.Writer) *bufio.Writer { return bufio.NewWriter(w) }
