package trace

import (
	"bytes"
	"testing"

	"artmem/internal/workloads"
)

// FuzzReader verifies the trace decoder never panics or loops on
// arbitrary byte streams — it must either replay cleanly or surface a
// format error.
func FuzzReader(f *testing.F) {
	// Seed with a valid trace and a few corruptions of it.
	var buf bytes.Buffer
	accs := []workloads.Access{{Addr: 0}, {Addr: 4096, Write: true}, {Addr: 64}}
	if _, err := Record(&buf, genWorkload("seed", 1<<20, accs)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	if len(valid) > 8 {
		f.Add(valid[:len(valid)-3]) // truncated body
		f.Add(valid[:10])           // truncated header
	}
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte("ATRC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected at the header; fine
		}
		// Replay must terminate (bounded by input length: each record
		// consumes at least one byte).
		total := int64(0)
		for {
			b, ok := r.Next()
			if !ok {
				break
			}
			total += int64(len(b))
			if total > int64(len(data))+1 {
				t.Fatalf("decoded %d records from %d bytes", total, len(data))
			}
		}
	})
}
