package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"artmem/internal/workloads"
)

// genWorkload builds a deterministic in-memory workload.
func genWorkload(name string, foot int64, accs []workloads.Access) workloads.Workload {
	i := 0
	return workloads.NewGenerator(name, foot, func() (workloads.Access, bool) {
		if i >= len(accs) {
			return workloads.Access{}, false
		}
		a := accs[i]
		i++
		return a, true
	})
}

func TestRoundTrip(t *testing.T) {
	accs := []workloads.Access{
		{Addr: 0, Write: false},
		{Addr: 4096, Write: true},
		{Addr: 64, Write: false},
		{Addr: 1 << 30, Write: true},
		{Addr: 1<<30 + 64, Write: false},
	}
	var buf bytes.Buffer
	n, err := Record(&buf, genWorkload("demo", 2<<30, accs))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(accs)) {
		t.Fatalf("recorded %d, want %d", n, len(accs))
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "demo" || r.FootprintBytes() != 2<<30 {
		t.Errorf("header = %q/%d", r.Name(), r.FootprintBytes())
	}
	var got []workloads.Access
	for {
		b, ok := r.Next()
		if !ok {
			break
		}
		got = append(got, b...)
	}
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
	if len(got) != len(accs) {
		t.Fatalf("replayed %d accesses, want %d", len(got), len(accs))
	}
	for i := range accs {
		if got[i] != accs[i] {
			t.Errorf("access %d = %+v, want %+v", i, got[i], accs[i])
		}
	}
}

func TestCompactnessOnSequentialTrace(t *testing.T) {
	// Sequential 64B-stride reads must encode around 1-2 bytes/access.
	var accs []workloads.Access
	for i := 0; i < 10000; i++ {
		accs = append(accs, workloads.Access{Addr: uint64(i * 64)})
	}
	var buf bytes.Buffer
	if _, err := Record(&buf, genWorkload("seq", 1<<20, accs)); err != nil {
		t.Fatal(err)
	}
	perAccess := float64(buf.Len()) / 10000
	if perAccess > 2.5 {
		t.Errorf("sequential trace costs %.1f bytes/access, want ≤ 2.5", perAccess)
	}
}

func TestBadMagic(t *testing.T) {
	data := []byte("NOPE-this-is-not-a-trace-file-at-all")
	if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("err = %v, want ErrBadFormat", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("ATRC\x01"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("err = %v, want ErrBadFormat", err)
	}
}

func TestBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHeader(&buf, "x", 100, 0); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // corrupt version
	if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("err = %v, want ErrBadFormat", err)
	}
}

func TestZeroFootprintRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHeader(&buf, "x", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(&buf); !errors.Is(err, ErrBadFormat) {
		t.Errorf("err = %v, want ErrBadFormat", err)
	}
}

func TestDeclaredCountTruncation(t *testing.T) {
	// Header declares 100 records but the body carries 2: the reader
	// must surface a truncation error.
	var buf bytes.Buffer
	if err := WriteHeader(&buf, "x", 1000, 100); err != nil {
		t.Fatal(err)
	}
	w := &Writer{w: newBufio(&buf)}
	w.Append(1, false)
	w.Append(2, true)
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	workloads.Drain(r)
	if r.Err() == nil {
		t.Error("truncated body not reported")
	}
}

func TestReplayThroughHarnessTypes(t *testing.T) {
	// A recorded synthetic pattern replays identically.
	prof := workloads.QuickProfile()
	spec, err := workloads.ByName("S1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := Record(&buf, spec.New(prof))
	if err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := workloads.Drain(r); got != n {
		t.Errorf("replayed %d of %d recorded accesses", got, n)
	}
	if r.Err() != nil {
		t.Error(r.Err())
	}
	// Replay matches a fresh generation access-for-access.
	fresh := spec.New(prof)
	defer fresh.Close()
	r2, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for {
		fb, fok := fresh.Next()
		rb, rok := r2.Next()
		if fok != rok {
			t.Fatalf("length mismatch: fresh ok=%v replay ok=%v", fok, rok)
		}
		if !fok {
			break
		}
		if len(fb) != len(rb) {
			t.Fatalf("batch sizes differ: %d vs %d", len(fb), len(rb))
		}
		for i := range fb {
			if fb[i] != rb[i] {
				t.Fatalf("access differs at %d: %+v vs %+v", i, fb[i], rb[i])
			}
		}
	}
}

// Property: arbitrary access sequences round-trip exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(addrs []uint64, writes []bool) bool {
		var accs []workloads.Access
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			accs = append(accs, workloads.Access{Addr: a, Write: w})
		}
		var buf bytes.Buffer
		if _, err := Record(&buf, genWorkload("p", 1, accs)); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		var got []workloads.Access
		for {
			b, ok := r.Next()
			if !ok {
				break
			}
			got = append(got, b...)
		}
		if r.Err() != nil || len(got) != len(accs) {
			return false
		}
		for i := range accs {
			if got[i] != accs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "b", 1<<30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Append(uint64(i*64), i%8 == 0)
		if buf.Len() > 1<<24 {
			buf.Reset()
		}
	}
}
