// Package pebs models Intel PEBS-style hardware event sampling, the
// access-monitoring substrate used by ArtMem and MEMTIS.
//
// A Sampler observes every cache-missing memory access (via the
// memsim.Sampler hook) and records every Nth event into a bounded ring
// buffer, exactly as a PMU configured with a sampling period of N would.
// When the ring buffer is full, new samples are dropped (real PEBS
// overwrites or loses records when the buffer is not drained in time) and
// the drops are counted.
//
// The sampler also maintains per-tier counts of sampled events since the
// last window reset; the ratio of those counts is the signal ArtMem's RL
// state is built from (Equation 1 of the paper). Note this is the sampled
// view — it can differ from the machine's exact counters, and it can be
// empty when the CPU cache absorbed all accesses, which is precisely the
// situation ArtMem's extra "no events" state exists for.
//
// A Sampler is single-threaded and attaches to exactly one machine. On
// a memsim.ShardedMachine (DESIGN.md §12) each shard gets its own
// Sampler instance observing only that shard's misses under the shard
// lock — the sampled-ratio signal each per-shard agent consumes is
// local by construction, with no cross-shard ring contention.
package pebs

import (
	"artmem/internal/memsim"
	"artmem/internal/telemetry"
)

// Injector lets a chaos harness perturb the sampling path.
// internal/faultinject implements it; the sampler consults it (when
// installed) on every event that the sampling period selects.
type Injector interface {
	// DropSample reports whether the record is lost entirely: neither the
	// ring buffer nor the per-tier window counters see it. This models
	// sampling going dry (PMU reprogramming, interrupt throttling).
	DropSample(now int64) bool
	// RingOverflow reports whether the ring buffer behaves as full: the
	// record is dropped but the window counters still accumulate, exactly
	// like a genuine buffer overflow.
	RingOverflow(now int64) bool
}

// Sample is one recorded memory-access event.
type Sample struct {
	Page  memsim.PageID
	Tier  memsim.TierID
	Write bool
	// Time is the virtual timestamp at which the event was recorded.
	Time int64
}

// Config parameterizes a Sampler.
type Config struct {
	// Period records one sample per Period cache-missing accesses. The
	// paper initializes it to 200. Must be >= 1.
	Period uint64
	// RingSize is the capacity of the sample ring buffer.
	RingSize int
	// SampleCostNs is the background CPU cost per recorded sample
	// (the PEBS assist plus the sampling thread's processing). Charged
	// through the Charge hook; the paper reports sampling overhead of at
	// most 3% of a CPU (§6.4).
	SampleCostNs float64
	// Charge, when non-nil, receives background CPU charges.
	Charge func(ns float64)
}

// DefaultConfig returns the paper's sampling configuration.
func DefaultConfig() Config {
	return Config{
		Period:       200,
		RingSize:     64 * 1024,
		SampleCostNs: 20,
	}
}

// Sampler implements memsim.Sampler. It is not safe for concurrent use.
type Sampler struct {
	cfg     Config
	counter uint64
	ring    []Sample
	head    int // next slot to write
	count   int // valid samples in the ring

	dropped       uint64
	injectedDrops uint64
	total         uint64 // samples recorded since construction

	injector Injector

	// pageTrace, when non-nil, journals samples for its hash-selected
	// page subset (nil keeps the hot path to a single branch).
	pageTrace *telemetry.PageTrace

	// Per-window sampled-event counters, reset by WindowCounts.
	winFast uint64
	winSlow uint64
}

// New returns a Sampler with the given configuration. A Period of 0 is
// treated as 1 (sample everything); a RingSize of 0 uses the default.
func New(cfg Config) *Sampler {
	if cfg.Period == 0 {
		cfg.Period = 1
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultConfig().RingSize
	}
	return &Sampler{
		cfg:  cfg,
		ring: make([]Sample, cfg.RingSize),
	}
}

var _ memsim.Sampler = (*Sampler)(nil)

// OnMiss implements memsim.Sampler: it counts down the sampling period
// and records one event each time the period elapses.
func (s *Sampler) OnMiss(page memsim.PageID, tier memsim.TierID, write bool, now int64) {
	s.counter++
	if s.counter < s.cfg.Period {
		return
	}
	s.counter = 0
	if s.injector != nil && s.injector.DropSample(now) {
		// The record is lost before anything observes it: the window
		// counters stay flat, so the agent's signal genuinely goes dry.
		s.injectedDrops++
		return
	}
	if tier == memsim.Fast {
		s.winFast++
	} else {
		s.winSlow++
	}
	s.total++
	if s.cfg.Charge != nil && s.cfg.SampleCostNs > 0 {
		s.cfg.Charge(s.cfg.SampleCostNs)
	}
	full := s.count == len(s.ring) || (s.injector != nil && s.injector.RingOverflow(now))
	if s.pageTrace.Sampled(uint64(page)) {
		outcome := telemetry.OutcomeRecorded
		if full {
			outcome = telemetry.OutcomeRingDropped
		}
		s.pageTrace.Append(telemetry.PageEvent{
			TimeNs:  now,
			Page:    uint64(page),
			Kind:    telemetry.PageKindSample,
			Tier:    tier.String(),
			Outcome: outcome,
		})
	}
	if full {
		s.dropped++
		return
	}
	s.ring[s.head] = Sample{Page: page, Tier: tier, Write: write, Time: now}
	s.head = (s.head + 1) % len(s.ring)
	s.count++
}

// Drain invokes fn on every buffered sample in arrival order and empties
// the buffer. It returns the number of samples drained. This models the
// sampling thread reading the PEBS buffer (paper §4.4).
func (s *Sampler) Drain(fn func(Sample)) int {
	n := s.count
	idx := s.head - s.count
	if idx < 0 {
		idx += len(s.ring)
	}
	for i := 0; i < n; i++ {
		fn(s.ring[idx])
		idx = (idx + 1) % len(s.ring)
	}
	s.count = 0
	return n
}

// Pending returns the number of undrained samples.
func (s *Sampler) Pending() int { return s.count }

// Dropped returns the cumulative number of samples lost to buffer
// overflow (genuine or injected).
func (s *Sampler) Dropped() uint64 { return s.dropped }

// InjectedDrops returns the number of samples lost entirely to an
// installed fault injector (before even the window counters saw them).
func (s *Sampler) InjectedDrops() uint64 { return s.injectedDrops }

// SetInjector installs a fault injector on the sampling path (nil to
// remove).
func (s *Sampler) SetInjector(fi Injector) { s.injector = fi }

// SetPageTrace installs a page-lifecycle trace on the sampling path
// (nil to remove). Samples for pages in the trace's hash-selected
// subset are journaled as they are recorded or lost to ring overflow.
func (s *Sampler) SetPageTrace(pt *telemetry.PageTrace) { s.pageTrace = pt }

// Total returns the cumulative number of samples recorded (including
// dropped ones).
func (s *Sampler) Total() uint64 { return s.total }

// Stats is a snapshot of the sampler's accounting, the unit the
// telemetry layer scrapes.
type Stats struct {
	// Taken counts samples the period selected and the injector let
	// through (including ones later lost to ring overflow).
	Taken uint64
	// Dropped counts samples lost to ring-buffer overflow.
	Dropped uint64
	// InjectedDrops counts samples lost entirely to a fault injector.
	InjectedDrops uint64
	// Pending is the current undrained ring occupancy.
	Pending int
	// Period is the current sampling period.
	Period uint64
}

// Stats returns a snapshot of the sampler's counters. Like the rest of
// the Sampler it is not safe for concurrent use; the online runtime
// calls it under its lock.
func (s *Sampler) Stats() Stats {
	return Stats{
		Taken:         s.total,
		Dropped:       s.dropped,
		InjectedDrops: s.injectedDrops,
		Pending:       s.count,
		Period:        s.cfg.Period,
	}
}

// Period returns the current sampling period.
func (s *Sampler) Period() uint64 { return s.cfg.Period }

// SetPeriod changes the sampling period. The paper dynamically adjusts
// the period to bound sampling overhead (§6.4); the harness and the
// ArtMem core use this to trade accuracy for overhead. Periods < 1 are
// clamped to 1.
func (s *Sampler) SetPeriod(p uint64) {
	if p < 1 {
		p = 1
	}
	s.cfg.Period = p
}

// WindowCounts returns the per-tier sampled-event counts accumulated
// since the previous call, then resets them. ArtMem computes its RL state
// from exactly these two numbers (Equation 1).
func (s *Sampler) WindowCounts() (fast, slow uint64) {
	fast, slow = s.winFast, s.winSlow
	s.winFast, s.winSlow = 0, 0
	return fast, slow
}

// PeekWindowCounts returns the current window counters without resetting.
func (s *Sampler) PeekWindowCounts() (fast, slow uint64) {
	return s.winFast, s.winSlow
}
