package pebs

import (
	"testing"
	"testing/quick"

	"artmem/internal/memsim"
	"artmem/internal/telemetry"
)

func TestSamplingPeriod(t *testing.T) {
	s := New(Config{Period: 10, RingSize: 1024})
	for i := 0; i < 100; i++ {
		s.OnMiss(memsim.PageID(i), memsim.Fast, false, int64(i))
	}
	if s.Total() != 10 {
		t.Errorf("Total = %d, want 10 (period 10, 100 events)", s.Total())
	}
	if s.Pending() != 10 {
		t.Errorf("Pending = %d, want 10", s.Pending())
	}
	// The recorded pages must be every 10th event (the 10th, 20th, ...).
	var pages []memsim.PageID
	s.Drain(func(smp Sample) { pages = append(pages, smp.Page) })
	for i, p := range pages {
		want := memsim.PageID(10*i + 9)
		if p != want {
			t.Errorf("sample %d: page %d, want %d", i, p, want)
		}
	}
}

func TestPeriodOneSamplesEverything(t *testing.T) {
	s := New(Config{Period: 1, RingSize: 16})
	s.OnMiss(1, memsim.Slow, true, 5)
	if s.Total() != 1 {
		t.Fatalf("Total = %d, want 1", s.Total())
	}
	var got Sample
	s.Drain(func(smp Sample) { got = smp })
	want := Sample{Page: 1, Tier: memsim.Slow, Write: true, Time: 5}
	if got != want {
		t.Errorf("sample = %+v, want %+v", got, want)
	}
}

func TestZeroPeriodClampedToOne(t *testing.T) {
	s := New(Config{Period: 0, RingSize: 4})
	if s.Period() != 1 {
		t.Errorf("Period = %d, want 1", s.Period())
	}
	s.SetPeriod(0)
	if s.Period() != 1 {
		t.Errorf("SetPeriod(0) → %d, want 1", s.Period())
	}
}

func TestRingOverflowDrops(t *testing.T) {
	s := New(Config{Period: 1, RingSize: 4})
	for i := 0; i < 10; i++ {
		s.OnMiss(memsim.PageID(i), memsim.Fast, false, int64(i))
	}
	if s.Pending() != 4 {
		t.Errorf("Pending = %d, want 4 (ring size)", s.Pending())
	}
	if s.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", s.Dropped())
	}
	// The survivors are the oldest four (PEBS drops new records when the
	// buffer is full and undrained).
	var pages []memsim.PageID
	s.Drain(func(smp Sample) { pages = append(pages, smp.Page) })
	for i, p := range pages {
		if p != memsim.PageID(i) {
			t.Errorf("survivor %d = page %d, want %d", i, p, i)
		}
	}
}

func TestDrainEmptiesAndReturnsCount(t *testing.T) {
	s := New(Config{Period: 1, RingSize: 8})
	for i := 0; i < 5; i++ {
		s.OnMiss(memsim.PageID(i), memsim.Fast, false, 0)
	}
	if n := s.Drain(func(Sample) {}); n != 5 {
		t.Errorf("Drain returned %d, want 5", n)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending after drain = %d", s.Pending())
	}
	if n := s.Drain(func(Sample) { t.Error("callback on empty drain") }); n != 0 {
		t.Errorf("second Drain returned %d", n)
	}
}

func TestDrainOrderAcrossWrap(t *testing.T) {
	s := New(Config{Period: 1, RingSize: 4})
	for i := 0; i < 3; i++ {
		s.OnMiss(memsim.PageID(i), memsim.Fast, false, 0)
	}
	s.Drain(func(Sample) {})
	// Head is now at index 3; these five wrap around, one drops.
	for i := 10; i < 15; i++ {
		s.OnMiss(memsim.PageID(i), memsim.Fast, false, 0)
	}
	var pages []memsim.PageID
	s.Drain(func(smp Sample) { pages = append(pages, smp.Page) })
	want := []memsim.PageID{10, 11, 12, 13}
	if len(pages) != len(want) {
		t.Fatalf("drained %v, want %v", pages, want)
	}
	for i := range want {
		if pages[i] != want[i] {
			t.Fatalf("drained %v, want %v", pages, want)
		}
	}
}

func TestWindowCounts(t *testing.T) {
	s := New(Config{Period: 1, RingSize: 64})
	for i := 0; i < 7; i++ {
		s.OnMiss(0, memsim.Fast, false, 0)
	}
	for i := 0; i < 3; i++ {
		s.OnMiss(1, memsim.Slow, false, 0)
	}
	pf, psl := s.PeekWindowCounts()
	if pf != 7 || psl != 3 {
		t.Errorf("Peek = %d/%d, want 7/3", pf, psl)
	}
	f, sl := s.WindowCounts()
	if f != 7 || sl != 3 {
		t.Errorf("WindowCounts = %d/%d, want 7/3", f, sl)
	}
	f, sl = s.WindowCounts()
	if f != 0 || sl != 0 {
		t.Errorf("WindowCounts not reset: %d/%d", f, sl)
	}
}

func TestChargeHook(t *testing.T) {
	var charged float64
	s := New(Config{Period: 2, RingSize: 8, SampleCostNs: 100,
		Charge: func(ns float64) { charged += ns }})
	for i := 0; i < 10; i++ { // 5 samples recorded
		s.OnMiss(0, memsim.Fast, false, 0)
	}
	if charged != 500 {
		t.Errorf("charged = %g, want 500", charged)
	}
}

func TestIntegrationWithMachine(t *testing.T) {
	cfg := memsim.DefaultConfig(64*64*1024, 32*64*1024, 64*1024)
	cfg.CacheLines = 0
	m := memsim.NewMachine(cfg)
	s := New(Config{Period: 5, RingSize: 1024})
	m.SetSampler(s)
	for i := 0; i < 1000; i++ {
		m.Access(uint64(i*64)%uint64(cfg.FootprintBytes), false)
	}
	if s.Total() != 200 {
		t.Errorf("sampler recorded %d, want 200", s.Total())
	}
}

// Property: total == drained + pending + dropped at all times.
func TestSampleConservationProperty(t *testing.T) {
	f := func(events []bool, period uint8, ringBits uint8) bool {
		p := uint64(period%16) + 1
		ring := 1 << (ringBits % 6) // 1..32
		s := New(Config{Period: p, RingSize: ring})
		drained := uint64(0)
		for i, w := range events {
			s.OnMiss(memsim.PageID(i), memsim.Fast, w, int64(i))
			if i%17 == 0 {
				drained += uint64(s.Drain(func(Sample) {}))
			}
			if s.Total() != drained+uint64(s.Pending())+s.Dropped() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOnMiss(b *testing.B) {
	s := New(DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.OnMiss(memsim.PageID(i), memsim.Fast, false, int64(i))
		if i%100000 == 0 {
			s.Drain(func(Sample) {})
		}
	}
}

// windowInjector drops or overflows every sample inside [from, to).
type windowInjector struct {
	dropFrom, dropTo         int64
	overflowFrom, overflowTo int64
}

func (w *windowInjector) DropSample(now int64) bool {
	return now >= w.dropFrom && now < w.dropTo
}

func (w *windowInjector) RingOverflow(now int64) bool {
	return now >= w.overflowFrom && now < w.overflowTo
}

func TestInjectedSampleDropGoesFullyDark(t *testing.T) {
	s := New(Config{Period: 1, RingSize: 1024})
	s.SetInjector(&windowInjector{dropFrom: 0, dropTo: 100})
	for i := 0; i < 100; i++ {
		s.OnMiss(memsim.PageID(i), memsim.Slow, false, int64(i))
	}
	// A dropped sample is lost before anything observes it: no ring
	// record, no window counts, no total — the signal goes dry, which is
	// what drives ArtMem into its no-sample state.
	if s.Pending() != 0 {
		t.Errorf("Pending = %d inside drop window, want 0", s.Pending())
	}
	fast, slow := s.PeekWindowCounts()
	if fast != 0 || slow != 0 {
		t.Errorf("window counts %d/%d inside drop window, want 0/0", fast, slow)
	}
	if s.Total() != 0 {
		t.Errorf("Total = %d, want 0", s.Total())
	}
	if s.InjectedDrops() != 100 {
		t.Errorf("InjectedDrops = %d, want 100", s.InjectedDrops())
	}
	// Outside the window, sampling resumes.
	s.OnMiss(0, memsim.Fast, false, 200)
	if s.Pending() != 1 || s.Total() != 1 {
		t.Errorf("sampling did not resume after the window")
	}
}

func TestInjectedRingOverflowKeepsWindowCounts(t *testing.T) {
	s := New(Config{Period: 1, RingSize: 1024})
	s.SetInjector(&windowInjector{overflowFrom: 0, overflowTo: 50, dropFrom: -1, dropTo: -1})
	for i := 0; i < 50; i++ {
		s.OnMiss(memsim.PageID(i), memsim.Fast, false, int64(i))
	}
	// Overflow loses the record but the PMU-side window counters
	// survive, exactly like a genuine full buffer.
	if s.Pending() != 0 {
		t.Errorf("Pending = %d during overflow, want 0", s.Pending())
	}
	fast, _ := s.PeekWindowCounts()
	if fast != 50 {
		t.Errorf("window fast count = %d during overflow, want 50", fast)
	}
	if s.Dropped() != 50 {
		t.Errorf("Dropped = %d, want 50", s.Dropped())
	}
	s.OnMiss(0, memsim.Fast, false, 100)
	if s.Pending() != 1 {
		t.Error("ring did not recover after the overflow window")
	}
}

func TestSamplerPageTrace(t *testing.T) {
	pt := telemetry.NewPageTrace(64, 1) // trace every page
	s := New(Config{Period: 2, RingSize: 3})
	s.SetPageTrace(pt)
	for i := 0; i < 10; i++ {
		s.OnMiss(7, memsim.Fast, false, int64(100+i))
	}
	ev := pt.PageEvents(7)
	if len(ev) != 5 {
		t.Fatalf("traced %d sample events, want 5 (period 2, 10 misses)", len(ev))
	}
	for i, e := range ev {
		if e.Kind != telemetry.PageKindSample || e.Tier != "fast" {
			t.Errorf("event %d: kind %q tier %q", i, e.Kind, e.Tier)
		}
		want := telemetry.OutcomeRecorded
		if i >= 3 { // ring size 3: later samples overflow
			want = telemetry.OutcomeRingDropped
		}
		if e.Outcome != want {
			t.Errorf("event %d: outcome %q, want %q", i, e.Outcome, want)
		}
	}

	// Removing the trace silences the journal.
	s.SetPageTrace(nil)
	s.OnMiss(7, memsim.Fast, false, 200)
	s.OnMiss(7, memsim.Fast, false, 201)
	if got := len(pt.PageEvents(7)); got != 5 {
		t.Errorf("journal grew to %d events after trace removal", got)
	}
}
