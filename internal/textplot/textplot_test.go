package textplot

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"name", "value"},
	}
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 1234.5678)
	out := tb.Render()
	for _, want := range []string{"== demo ==", "name", "value", "alpha",
		"1.500", "1235", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Columns align: every data line at least as wide as the header line.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("only %d lines", len(lines))
	}
}

func TestAddRowTypes(t *testing.T) {
	tb := Table{Header: []string{"a", "b", "c"}}
	tb.AddRow("s", 42, 0.25)
	if tb.Rows[0][0] != "s" || tb.Rows[0][1] != "42" || tb.Rows[0][2] != "0.250" {
		t.Errorf("row = %v", tb.Rows[0])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.5:     "0.500",
		12.34:   "12.3",
		4567.8:  "4568",
		-0.25:   "-0.250",
		-1234.5: "-1234", // %.0f rounds half to even
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestBars(t *testing.T) {
	out := Bars("title", []string{"aa", "b"}, []float64{10, 5}, 20)
	if !strings.Contains(out, "== title ==") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The larger value gets the longer bar.
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Errorf("bars not proportional:\n%s", out)
	}
	// Zero maxWidth defaults sanely; all-zero values draw no bars.
	out = Bars("", []string{"x"}, []float64{0}, 0)
	if strings.Contains(out, "#") {
		t.Errorf("zero value drew a bar")
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline ends = %c %c", runes[0], runes[3])
	}
	// Constant series renders the lowest glyph everywhere.
	flat := []rune(Sparkline([]float64{5, 5, 5}))
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat sparkline contains %c", r)
		}
	}
}
