package textplot

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"name", "value"},
	}
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 1234.5678)
	out := tb.Render()
	for _, want := range []string{"== demo ==", "name", "value", "alpha",
		"1.500", "1235", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Columns align: every data line at least as wide as the header line.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("only %d lines", len(lines))
	}
}

func TestAddRowTypes(t *testing.T) {
	tb := Table{Header: []string{"a", "b", "c"}}
	tb.AddRow("s", 42, 0.25)
	if tb.Rows[0][0] != "s" || tb.Rows[0][1] != "42" || tb.Rows[0][2] != "0.250" {
		t.Errorf("row = %v", tb.Rows[0])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.5:     "0.500",
		12.34:   "12.3",
		4567.8:  "4568",
		-0.25:   "-0.250",
		-1234.5: "-1234", // %.0f rounds half to even
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestBars(t *testing.T) {
	out := Bars("title", []string{"aa", "b"}, []float64{10, 5}, 20)
	if !strings.Contains(out, "== title ==") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The larger value gets the longer bar.
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Errorf("bars not proportional:\n%s", out)
	}
	// Zero maxWidth defaults sanely; all-zero values draw no bars.
	out = Bars("", []string{"x"}, []float64{0}, 0)
	if strings.Contains(out, "#") {
		t.Errorf("zero value drew a bar")
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap("q", []string{"s0", "s1"}, []string{"a0", "a1", "a2"},
		[][]float64{{0, 5, 10}, {2.5, 7.5}})
	if !strings.Contains(out, "== q ==") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + 2 rows + scale line
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Min and max values get the extreme ramp glyphs.
	if !strings.Contains(lines[2], "█ 10.0") {
		t.Errorf("max cell not full shade: %q", lines[2])
	}
	if !strings.ContainsRune(lines[2], ' ') {
		t.Errorf("min cell not blank shade: %q", lines[2])
	}
	if !strings.Contains(lines[4], "scale:") ||
		!strings.Contains(lines[4], "=0") || !strings.Contains(lines[4], "=10.0") {
		t.Errorf("scale line = %q", lines[4])
	}
	// Display-width alignment: the ramp runes are multi-byte, so equal
	// rune counts (not byte counts) prove the columns line up. The
	// ragged second row is one cell shorter.
	w := func(s string) int { return len([]rune(s)) }
	if w(lines[1]) != w(lines[2]) {
		t.Errorf("header/row width mismatch: %d vs %d\n%s",
			w(lines[1]), w(lines[2]), out)
	}
	if got, want := w(lines[3]), w(lines[2])-11; got != want {
		t.Errorf("ragged row width = %d, want %d\n%s", got, want, out)
	}

	// A constant matrix shades everything with the lowest glyph and
	// still prints a scale.
	flat := strings.Split(Heatmap("", []string{"r"}, []string{"c"}, [][]float64{{3}}), "\n")
	if strings.ContainsRune(flat[1], '█') {
		t.Errorf("flat heatmap row has full shade: %q", flat[1])
	}
	if !strings.Contains(flat[2], "scale:") {
		t.Errorf("flat heatmap missing scale: %q", flat[2])
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline ends = %c %c", runes[0], runes[3])
	}
	// Constant series renders the lowest glyph everywhere.
	flat := []rune(Sparkline([]float64{5, 5, 5}))
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat sparkline contains %c", r)
		}
	}
}
