// Package textplot renders the experiment results as plain-text tables
// and simple bar/series charts for terminal output — the bench harness's
// replacement for the paper's figures.
package textplot

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells (converted with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: 3 significant decimals for
// small magnitudes, fewer for large ones.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				// Left-align the first (label) column.
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// Bars renders a labelled horizontal bar chart of values scaled to
// maxWidth characters. Values must be non-negative.
func Bars(title string, labels []string, values []float64, maxWidth int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxWidth <= 0 {
		maxWidth = 50
	}
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(maxWidth))
		}
		fmt.Fprintf(&b, "%-*s |%s %s\n", maxL, labels[i],
			strings.Repeat("#", n), FormatFloat(v))
	}
	return b.String()
}

// Heatmap renders a matrix as a grid of shaded cells (one ramp
// character per cell, scaled to the matrix's global min/max) with the
// numeric value beside each shade — compact enough for a Q-table, exact
// enough to read actual values off. Row i is labelled rowLabels[i],
// column j colLabels[j]; ragged rows render their missing cells blank.
func Heatmap(title string, rowLabels, colLabels []string, values [][]float64) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	lo, hi, any := 0.0, 0.0, false
	for _, row := range values {
		for _, v := range row {
			if !any {
				lo, hi, any = v, v, true
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	ramp := []rune(" ░▒▓█")
	shade := func(v float64) rune {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(ramp)-1))
		}
		return ramp[idx]
	}
	maxL := 0
	for _, l := range rowLabels {
		if len(l) > maxL {
			maxL = len(l)
		}
	}
	const cellW = 9 // "▓ -12.345"
	// Pad by display width, not byte length: the ramp runes are
	// multi-byte, so %*s would misalign shaded columns.
	pad := func(s string, n int) string {
		if r := utf8.RuneCountInString(s); r < n {
			return strings.Repeat(" ", n-r) + s
		}
		return s
	}
	fmt.Fprintf(&b, "%-*s", maxL, "")
	for _, c := range colLabels {
		b.WriteString("  ")
		b.WriteString(pad(c, cellW))
	}
	b.WriteByte('\n')
	for i, row := range values {
		label := ""
		if i < len(rowLabels) {
			label = rowLabels[i]
		}
		fmt.Fprintf(&b, "%-*s", maxL, label)
		for _, v := range row {
			b.WriteString("  ")
			b.WriteString(pad(fmt.Sprintf("%c %s", shade(v), FormatFloat(v)), cellW))
		}
		b.WriteByte('\n')
	}
	if any {
		fmt.Fprintf(&b, "scale: %c=%s .. %c=%s\n", ramp[0], FormatFloat(lo),
			ramp[len(ramp)-1], FormatFloat(hi))
	}
	return b.String()
}

// Sparkline renders a series as a one-line unicode sparkline.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(ramp)-1))
		}
		b.WriteRune(ramp[idx])
	}
	return b.String()
}
