// Package rl implements the tabular, model-free reinforcement learning
// machinery used by ArtMem: Q-tables with ε-greedy action selection and
// both Q-learning and SARSA update rules (the paper compares the two in
// §6.3.5 and finds them equivalent for this problem).
//
// The state and action spaces are deliberately tiny — ArtMem discretizes
// the fast-tier access ratio into k+2 states and uses single-digit action
// sets — so a Q-table costs well under 10KB (paper §6.4) and an update is
// a handful of floating-point operations.
package rl

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"artmem/internal/dist"
)

// Algorithm selects the temporal-difference update rule.
type Algorithm uint8

const (
	// QLearning is the off-policy rule: the target bootstraps from the
	// greedy (max) action value in the next state.
	QLearning Algorithm = iota
	// SARSA is the on-policy rule: the target bootstraps from the action
	// actually chosen in the next state.
	SARSA
	// ExpectedSARSA bootstraps from the ε-greedy *expectation* over the
	// next state's actions — lower-variance than SARSA, on-policy unlike
	// Q-learning. An extension beyond the paper's two algorithms.
	ExpectedSARSA
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case SARSA:
		return "sarsa"
	case ExpectedSARSA:
		return "expected-sarsa"
	}
	return "q-learning"
}

// Config parameterizes a Table. The defaults (see DefaultConfig) are the
// paper's tuned hyperparameters from the sensitivity study (§6.3.7).
type Config struct {
	States  int
	Actions int
	// Alpha is the learning rate: how much new experience moves Q values.
	Alpha float64
	// Gamma is the discount factor weighting long-term returns.
	Gamma float64
	// Epsilon is the exploration probability for ε-greedy selection.
	Epsilon float64
	// Algorithm selects Q-learning (default) or SARSA.
	Algorithm Algorithm
}

// The paper's tuned hyperparameters: α = e⁻², γ = e⁻¹, ε = 0.3 (§6.3.7).
var (
	DefaultAlpha   = math.Exp(-2)
	DefaultGamma   = math.Exp(-1)
	DefaultEpsilon = 0.3
)

// DefaultConfig returns the paper's hyperparameters for a table of the
// given dimensions.
func DefaultConfig(states, actions int) Config {
	return Config{
		States:  states,
		Actions: actions,
		Alpha:   DefaultAlpha,
		Gamma:   DefaultGamma,
		Epsilon: DefaultEpsilon,
	}
}

// Table is one Q-table with its learning configuration. It is not safe
// for concurrent use.
type Table struct {
	cfg      Config
	q        []float64 // row-major [state][action]
	rng      *dist.RNG
	updates  uint64
	explores uint64

	// Explainability accounting (see Snapshot): how often each state
	// was visited by Choose, how many of those visits took the
	// ε-exploration branch, and the reward mass attributed to updates
	// from each state.
	visits        []uint64
	stateExplores []uint64
	rewardSum     []float64
	rewardCount   []uint64
}

// NewTable returns a zero-initialized Q-table. It panics on non-positive
// dimensions or parameters outside their valid ranges (tables are built
// from code, not user input).
func NewTable(cfg Config, rng *dist.RNG) *Table {
	if cfg.States <= 0 || cfg.Actions <= 0 {
		panic(fmt.Sprintf("rl: invalid table dimensions %dx%d", cfg.States, cfg.Actions))
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		panic(fmt.Sprintf("rl: alpha %g outside (0,1]", cfg.Alpha))
	}
	if cfg.Gamma < 0 || cfg.Gamma >= 1 {
		panic(fmt.Sprintf("rl: gamma %g outside [0,1)", cfg.Gamma))
	}
	if cfg.Epsilon < 0 || cfg.Epsilon > 1 {
		panic(fmt.Sprintf("rl: epsilon %g outside [0,1]", cfg.Epsilon))
	}
	if rng == nil {
		rng = dist.NewRNG(0)
	}
	return &Table{
		cfg:           cfg,
		q:             make([]float64, cfg.States*cfg.Actions),
		rng:           rng,
		visits:        make([]uint64, cfg.States),
		stateExplores: make([]uint64, cfg.States),
		rewardSum:     make([]float64, cfg.States),
		rewardCount:   make([]uint64, cfg.States),
	}
}

// Config returns the table's configuration.
func (t *Table) Config() Config { return t.cfg }

// Updates returns the number of TD updates applied.
func (t *Table) Updates() uint64 { return t.updates }

// Explorations returns the number of Choose calls that took the
// ε-branch (a uniformly random action instead of the greedy one). The
// telemetry layer exposes it so exploration behaviour is observable
// alongside the Q-update counts.
func (t *Table) Explorations() uint64 { return t.explores }

// Q returns the action value for (state, action).
func (t *Table) Q(state, action int) float64 {
	return t.q[state*t.cfg.Actions+action]
}

// SetQ overwrites the action value for (state, action). ArtMem uses this
// for its optimistic initialization Q(k, 0) = 1 (Algorithm 1 line 1).
func (t *Table) SetQ(state, action int, v float64) {
	t.q[state*t.cfg.Actions+action] = v
}

// Best returns the greedy action for state and its value. Ties are
// broken uniformly at random (seeded, hence reproducible).
func (t *Table) Best(state int) (action int, value float64) {
	row := t.q[state*t.cfg.Actions : (state+1)*t.cfg.Actions]
	action, value = 0, row[0]
	ties := 1
	for a := 1; a < len(row); a++ {
		switch {
		case row[a] > value:
			action, value = a, row[a]
			ties = 1
		case row[a] == value:
			ties++
			if t.rng.Intn(ties) == 0 {
				action = a
			}
		}
	}
	return action, value
}

// MaxQ returns the maximum action value in state.
func (t *Table) MaxQ(state int) float64 {
	row := t.q[state*t.cfg.Actions : (state+1)*t.cfg.Actions]
	m := row[0]
	for _, v := range row[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Choose performs ε-greedy selection: with probability ε a uniformly
// random action (exploration), otherwise the greedy action.
func (t *Table) Choose(state int) int {
	t.visits[state]++
	if t.cfg.Epsilon > 0 && t.rng.Float64() < t.cfg.Epsilon {
		t.explores++
		t.stateExplores[state]++
		return t.rng.Intn(t.cfg.Actions)
	}
	a, _ := t.Best(state)
	return a
}

// Update applies one temporal-difference update for the transition
// (state, action, reward, nextState). nextAction is the action selected
// in nextState and is only consulted by SARSA; Q-learning ignores it.
//
//	Q(s,a) ← Q(s,a) + α [ r + γ·target − Q(s,a) ]
func (t *Table) Update(state, action int, reward float64, nextState, nextAction int) {
	var target float64
	switch t.cfg.Algorithm {
	case SARSA:
		target = t.Q(nextState, nextAction)
	case ExpectedSARSA:
		target = t.expectedQ(nextState)
	default:
		target = t.MaxQ(nextState)
	}
	i := state*t.cfg.Actions + action
	t.q[i] += t.cfg.Alpha * (reward + t.cfg.Gamma*target - t.q[i])
	t.updates++
	t.rewardSum[state] += reward
	t.rewardCount[state]++
}

// expectedQ returns the ε-greedy expectation of the next state's value:
// (1−ε)·maxQ + ε·meanQ.
func (t *Table) expectedQ(state int) float64 {
	row := t.q[state*t.cfg.Actions : (state+1)*t.cfg.Actions]
	maxV, sum := row[0], 0.0
	for _, v := range row {
		if v > maxV {
			maxV = v
		}
		sum += v
	}
	mean := sum / float64(len(row))
	return (1-t.cfg.Epsilon)*maxV + t.cfg.Epsilon*mean
}

// Clone returns a deep copy of the table sharing no state with t, with a
// freshly split RNG. Used by the robustness study (§6.3.6): a Q-table
// trained on one workload is cloned and reused to run another.
func (t *Table) Clone() *Table {
	return &Table{
		cfg:           t.cfg,
		q:             append([]float64(nil), t.q...),
		rng:           t.rng.Split(),
		visits:        append([]uint64(nil), t.visits...),
		stateExplores: append([]uint64(nil), t.stateExplores...),
		rewardSum:     append([]float64(nil), t.rewardSum...),
		rewardCount:   append([]uint64(nil), t.rewardCount...),
	}
}

// CopyQFrom copies the Q values of src into t. Dimensions must match.
func (t *Table) CopyQFrom(src *Table) error {
	if src.cfg.States != t.cfg.States || src.cfg.Actions != t.cfg.Actions {
		return fmt.Errorf("rl: dimension mismatch %dx%d vs %dx%d",
			src.cfg.States, src.cfg.Actions, t.cfg.States, t.cfg.Actions)
	}
	copy(t.q, src.q)
	return nil
}

// MemoryBytes returns the table's Q-value storage footprint. The paper
// reports the two ArtMem Q-tables occupy under 10KB total (§6.4).
func (t *Table) MemoryBytes() int { return len(t.q) * 8 }

// GreedyAction returns the argmax action for state without consuming
// randomness: ties break toward the lowest action index, so repeated
// calls are stable. This is the explainability view of the policy —
// "what would the agent do here if it did not explore".
func (t *Table) GreedyAction(state int) int {
	row := t.q[state*t.cfg.Actions : (state+1)*t.cfg.Actions]
	best := 0
	for a := 1; a < len(row); a++ {
		if row[a] > row[best] {
			best = a
		}
	}
	return best
}

// Snapshot is a point-in-time, JSON-marshalable view of one Q-table
// and its learning history — the payload behind the /qtable endpoint
// and the artmemviz heatmap.
type Snapshot struct {
	States    int     `json:"states"`
	Actions   int     `json:"actions"`
	Algorithm string  `json:"algorithm"`
	Alpha     float64 `json:"alpha"`
	Gamma     float64 `json:"gamma"`
	Epsilon   float64 `json:"epsilon"`
	Updates   uint64  `json:"updates"`
	// Q is the full value matrix, row per state.
	Q [][]float64 `json:"q"`
	// Visits counts Choose calls per state; Explorations the subset
	// that took the ε-branch (greedy draws = Visits − Explorations).
	Visits       []uint64 `json:"visits"`
	Explorations []uint64 `json:"explorations"`
	// Greedy is the current argmax action per state (stable ties).
	Greedy []int `json:"greedy"`
	// MeanReward attributes reward to the state it was received in:
	// the mean TD reward over updates from that state (0 if never
	// updated); RewardCount is the per-state update count.
	MeanReward  []float64 `json:"mean_reward"`
	RewardCount []uint64  `json:"reward_count"`
}

// Snapshot captures the table's current Q values, per-state visit and
// exploration counts, greedy actions, and reward attribution. The
// result shares no memory with the table.
func (t *Table) Snapshot() Snapshot {
	s := Snapshot{
		States:       t.cfg.States,
		Actions:      t.cfg.Actions,
		Algorithm:    t.cfg.Algorithm.String(),
		Alpha:        t.cfg.Alpha,
		Gamma:        t.cfg.Gamma,
		Epsilon:      t.cfg.Epsilon,
		Updates:      t.updates,
		Q:            make([][]float64, t.cfg.States),
		Visits:       append([]uint64(nil), t.visits...),
		Explorations: append([]uint64(nil), t.stateExplores...),
		Greedy:       make([]int, t.cfg.States),
		MeanReward:   make([]float64, t.cfg.States),
		RewardCount:  append([]uint64(nil), t.rewardCount...),
	}
	for st := 0; st < t.cfg.States; st++ {
		s.Q[st] = append([]float64(nil), t.q[st*t.cfg.Actions:(st+1)*t.cfg.Actions]...)
		s.Greedy[st] = t.GreedyAction(st)
		if n := t.rewardCount[st]; n > 0 {
			s.MeanReward[st] = t.rewardSum[st] / float64(n)
		}
	}
	return s
}

const marshalMagic = uint32(0x41724d51) // "ArMQ"

// MarshalBinary serializes the table dimensions and Q values (not the
// RNG position or hyperparameters).
func (t *Table) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	for _, v := range []uint32{marshalMagic, uint32(t.cfg.States), uint32(t.cfg.Actions)} {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	if err := binary.Write(&buf, binary.LittleEndian, t.q); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores Q values serialized by MarshalBinary into a
// table with matching dimensions.
func (t *Table) UnmarshalBinary(data []byte) error {
	buf := bytes.NewReader(data)
	var magic, states, actions uint32
	for _, p := range []*uint32{&magic, &states, &actions} {
		if err := binary.Read(buf, binary.LittleEndian, p); err != nil {
			return err
		}
	}
	if magic != marshalMagic {
		return fmt.Errorf("rl: bad magic %#x", magic)
	}
	if int(states) != t.cfg.States || int(actions) != t.cfg.Actions {
		return fmt.Errorf("rl: serialized dimensions %dx%d do not match table %dx%d",
			states, actions, t.cfg.States, t.cfg.Actions)
	}
	return binary.Read(buf, binary.LittleEndian, t.q)
}
