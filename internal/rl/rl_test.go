package rl

import (
	"math"
	"testing"
	"testing/quick"

	"artmem/internal/dist"
)

func newTest(alg Algorithm, eps float64) *Table {
	cfg := DefaultConfig(4, 3)
	cfg.Algorithm = alg
	cfg.Epsilon = eps
	return NewTable(cfg, dist.NewRNG(1))
}

func TestDefaultsMatchPaper(t *testing.T) {
	if math.Abs(DefaultAlpha-math.Exp(-2)) > 1e-12 {
		t.Errorf("alpha = %g", DefaultAlpha)
	}
	if math.Abs(DefaultGamma-math.Exp(-1)) > 1e-12 {
		t.Errorf("gamma = %g", DefaultGamma)
	}
	if DefaultEpsilon != 0.3 {
		t.Errorf("epsilon = %g", DefaultEpsilon)
	}
}

func TestNewTablePanics(t *testing.T) {
	cases := []Config{
		{States: 0, Actions: 1, Alpha: 0.5, Gamma: 0.5},
		{States: 1, Actions: 0, Alpha: 0.5, Gamma: 0.5},
		{States: 1, Actions: 1, Alpha: 0, Gamma: 0.5},
		{States: 1, Actions: 1, Alpha: 1.5, Gamma: 0.5},
		{States: 1, Actions: 1, Alpha: 0.5, Gamma: 1},
		{States: 1, Actions: 1, Alpha: 0.5, Gamma: -0.1},
		{States: 1, Actions: 1, Alpha: 0.5, Gamma: 0.5, Epsilon: 2},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic for %+v", i, cfg)
				}
			}()
			NewTable(cfg, nil)
		}()
	}
}

func TestSetGetQ(t *testing.T) {
	tb := newTest(QLearning, 0)
	tb.SetQ(2, 1, 0.75)
	if got := tb.Q(2, 1); got != 0.75 {
		t.Errorf("Q(2,1) = %g", got)
	}
	if got := tb.Q(0, 0); got != 0 {
		t.Errorf("untouched Q = %g", got)
	}
}

func TestBestAndChooseGreedy(t *testing.T) {
	tb := newTest(QLearning, 0) // ε = 0: always greedy
	tb.SetQ(1, 2, 5)
	tb.SetQ(1, 0, 3)
	a, v := tb.Best(1)
	if a != 2 || v != 5 {
		t.Errorf("Best = (%d, %g), want (2, 5)", a, v)
	}
	for i := 0; i < 20; i++ {
		if got := tb.Choose(1); got != 2 {
			t.Fatalf("greedy Choose = %d, want 2", got)
		}
	}
}

func TestBestTieBreakCoversAll(t *testing.T) {
	tb := newTest(QLearning, 0)
	// All zeros in state 0: ties must be broken across all actions.
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		a, _ := tb.Best(0)
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Errorf("tie-break visited %d of 3 actions", len(seen))
	}
}

func TestChooseExplores(t *testing.T) {
	tb := newTest(QLearning, 1.0) // always explore
	tb.SetQ(0, 0, 100)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[tb.Choose(0)] = true
	}
	if len(seen) != 3 {
		t.Errorf("exploration visited %d of 3 actions", len(seen))
	}
}

func TestQLearningUpdateFormula(t *testing.T) {
	cfg := Config{States: 2, Actions: 2, Alpha: 0.5, Gamma: 0.9}
	tb := NewTable(cfg, dist.NewRNG(1))
	tb.SetQ(1, 0, 2) // next-state values
	tb.SetQ(1, 1, 4)
	tb.SetQ(0, 0, 1)
	// Q-learning bootstraps from max Q(s')=4 regardless of nextAction.
	tb.Update(0, 0, 10, 1, 0)
	want := 1 + 0.5*(10+0.9*4-1)
	if got := tb.Q(0, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Q after update = %g, want %g", got, want)
	}
	if tb.Updates() != 1 {
		t.Errorf("Updates = %d", tb.Updates())
	}
}

func TestSARSAUpdateFormula(t *testing.T) {
	cfg := Config{States: 2, Actions: 2, Alpha: 0.5, Gamma: 0.9, Algorithm: SARSA}
	tb := NewTable(cfg, dist.NewRNG(1))
	tb.SetQ(1, 0, 2)
	tb.SetQ(1, 1, 4)
	tb.SetQ(0, 0, 1)
	// SARSA bootstraps from the chosen next action (0 → value 2).
	tb.Update(0, 0, 10, 1, 0)
	want := 1 + 0.5*(10+0.9*2-1)
	if got := tb.Q(0, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Q after update = %g, want %g", got, want)
	}
}

// A two-state chain MDP: in state 0, action 1 yields reward 1 and stays;
// action 0 yields 0. Greedy Q-learning must learn to prefer action 1.
func TestQLearningConvergesOnToyMDP(t *testing.T) {
	cfg := Config{States: 1, Actions: 2, Alpha: 0.2, Gamma: 0.5, Epsilon: 0.2}
	tb := NewTable(cfg, dist.NewRNG(7))
	for i := 0; i < 2000; i++ {
		a := tb.Choose(0)
		r := 0.0
		if a == 1 {
			r = 1
		}
		tb.Update(0, a, r, 0, tb.Choose(0))
	}
	a, _ := tb.Best(0)
	if a != 1 {
		t.Errorf("learned action %d, want 1 (Q = %g vs %g)", a, tb.Q(0, 0), tb.Q(0, 1))
	}
	// Q(0,1) should approach r/(1-γ) = 2.
	if q := tb.Q(0, 1); math.Abs(q-2) > 0.3 {
		t.Errorf("Q(0,1) = %g, want ≈ 2", q)
	}
}

func TestSARSAConvergesOnToyMDP(t *testing.T) {
	cfg := Config{States: 1, Actions: 2, Alpha: 0.2, Gamma: 0.5, Epsilon: 0.2,
		Algorithm: SARSA}
	tb := NewTable(cfg, dist.NewRNG(7))
	a := tb.Choose(0)
	for i := 0; i < 2000; i++ {
		r := 0.0
		if a == 1 {
			r = 1
		}
		a2 := tb.Choose(0)
		tb.Update(0, a, r, 0, a2)
		a = a2
	}
	best, _ := tb.Best(0)
	if best != 1 {
		t.Errorf("learned action %d, want 1", best)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	tb := newTest(QLearning, 0.3)
	tb.SetQ(0, 0, 7)
	c := tb.Clone()
	if c.Q(0, 0) != 7 {
		t.Fatalf("clone lost Q values")
	}
	c.SetQ(0, 0, 1)
	if tb.Q(0, 0) != 7 {
		t.Errorf("clone aliases the original")
	}
}

func TestCopyQFrom(t *testing.T) {
	a := newTest(QLearning, 0)
	b := newTest(SARSA, 0.5)
	a.SetQ(3, 2, 9)
	if err := b.CopyQFrom(a); err != nil {
		t.Fatal(err)
	}
	if b.Q(3, 2) != 9 {
		t.Errorf("CopyQFrom did not copy")
	}
	other := NewTable(DefaultConfig(2, 2), nil)
	if err := b.CopyQFrom(other); err == nil {
		t.Error("dimension mismatch not rejected")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	tb := newTest(QLearning, 0)
	tb.SetQ(1, 1, 3.5)
	tb.SetQ(3, 0, -2)
	data, err := tb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := newTest(SARSA, 0.9)
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		for a := 0; a < 3; a++ {
			if restored.Q(s, a) != tb.Q(s, a) {
				t.Errorf("Q(%d,%d) = %g, want %g", s, a, restored.Q(s, a), tb.Q(s, a))
			}
		}
	}
	// Wrong dimensions rejected.
	small := NewTable(DefaultConfig(2, 2), nil)
	if err := small.UnmarshalBinary(data); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Corrupt magic rejected.
	data[0] ^= 0xff
	if err := restored.UnmarshalBinary(data); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated data rejected.
	if err := restored.UnmarshalBinary(data[:5]); err == nil {
		t.Error("truncated data accepted")
	}
}

func TestMemoryBytesIsSmall(t *testing.T) {
	// The paper's configuration: 12 states, 9 + 5 actions across two
	// tables → well under 10KB (§6.4).
	mig := NewTable(DefaultConfig(12, 9), nil)
	thr := NewTable(DefaultConfig(12, 5), nil)
	if total := mig.MemoryBytes() + thr.MemoryBytes(); total >= 10*1024 {
		t.Errorf("Q-tables take %d bytes, paper promises < 10KB", total)
	}
}

// Property: Q values never become NaN/Inf under bounded rewards, and
// Best always returns a valid action.
func TestUpdateStabilityProperty(t *testing.T) {
	f := func(transitions []uint16, rewards []int8) bool {
		tb := NewTable(DefaultConfig(6, 4), dist.NewRNG(3))
		for i, tr := range transitions {
			s := int(tr % 6)
			a := int(tr / 6 % 4)
			s2 := int(tr / 24 % 6)
			r := 0.0
			if i < len(rewards) {
				r = float64(rewards[i]) / 16
			}
			tb.Update(s, a, r, s2, tb.Choose(s2))
		}
		for s := 0; s < 6; s++ {
			a, v := tb.Best(s)
			if a < 0 || a >= 4 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAlgorithmString(t *testing.T) {
	if QLearning.String() != "q-learning" || SARSA.String() != "sarsa" {
		t.Error("Algorithm.String wrong")
	}
}

func BenchmarkUpdate(b *testing.B) {
	tb := NewTable(DefaultConfig(12, 9), dist.NewRNG(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Update(i%12, i%9, 0.5, (i+1)%12, (i+2)%9)
	}
}

func BenchmarkChoose(b *testing.B) {
	tb := NewTable(DefaultConfig(12, 9), dist.NewRNG(1))
	for i := 0; i < b.N; i++ {
		_ = tb.Choose(i % 12)
	}
}

func TestExpectedSARSAUpdateFormula(t *testing.T) {
	cfg := Config{States: 2, Actions: 2, Alpha: 0.5, Gamma: 0.9,
		Epsilon: 0.2, Algorithm: ExpectedSARSA}
	tb := NewTable(cfg, dist.NewRNG(1))
	tb.SetQ(1, 0, 2)
	tb.SetQ(1, 1, 4)
	tb.SetQ(0, 0, 1)
	tb.Update(0, 0, 10, 1, 0)
	// target = 0.8·max(2,4) + 0.2·mean(2,4) = 3.2 + 0.6 = 3.8.
	want := 1 + 0.5*(10+0.9*3.8-1)
	if got := tb.Q(0, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Q after update = %g, want %g", got, want)
	}
}

func TestExpectedSARSAConvergesOnToyMDP(t *testing.T) {
	cfg := Config{States: 1, Actions: 2, Alpha: 0.2, Gamma: 0.5, Epsilon: 0.2,
		Algorithm: ExpectedSARSA}
	tb := NewTable(cfg, dist.NewRNG(7))
	for i := 0; i < 2000; i++ {
		a := tb.Choose(0)
		r := 0.0
		if a == 1 {
			r = 1
		}
		tb.Update(0, a, r, 0, tb.Choose(0))
	}
	if a, _ := tb.Best(0); a != 1 {
		t.Errorf("learned action %d, want 1", a)
	}
}

func TestExpectedSARSAString(t *testing.T) {
	if ExpectedSARSA.String() != "expected-sarsa" {
		t.Error("String wrong")
	}
}

func TestPerStateVisitAccounting(t *testing.T) {
	tab := newTest(QLearning, 0.5)
	draws := map[int]int{0: 10, 1: 5, 3: 25}
	for state, n := range draws {
		for i := 0; i < n; i++ {
			tab.Choose(state)
		}
	}
	snap := tab.Snapshot()
	var explores uint64
	for state := 0; state < 4; state++ {
		if got, want := snap.Visits[state], uint64(draws[state]); got != want {
			t.Errorf("state %d: visits = %d, want %d", state, got, want)
		}
		if snap.Explorations[state] > snap.Visits[state] {
			t.Errorf("state %d: explorations %d exceed visits %d",
				state, snap.Explorations[state], snap.Visits[state])
		}
		explores += snap.Explorations[state]
	}
	if explores != tab.Explorations() {
		t.Errorf("per-state explorations sum %d != table total %d",
			explores, tab.Explorations())
	}
	// ε = 0.5 over 40 draws: some but not all should be exploratory.
	if explores == 0 || explores == 40 {
		t.Errorf("explorations = %d of 40, want a proper subset", explores)
	}

	// Greedy-only table records visits but never explores.
	greedy := newTest(QLearning, 0)
	for i := 0; i < 8; i++ {
		greedy.Choose(2)
	}
	gs := greedy.Snapshot()
	if gs.Visits[2] != 8 || gs.Explorations[2] != 0 {
		t.Errorf("greedy table: visits %d explorations %d, want 8 and 0",
			gs.Visits[2], gs.Explorations[2])
	}
}

func TestRewardAttribution(t *testing.T) {
	tab := newTest(QLearning, 0)
	tab.Update(1, 0, 2.0, 1, 0)
	tab.Update(1, 1, 4.0, 1, 0)
	tab.Update(2, 0, -1.0, 2, 0)
	snap := tab.Snapshot()
	if got := snap.MeanReward[1]; math.Abs(got-3.0) > 1e-12 {
		t.Errorf("state 1 mean reward = %g, want 3", got)
	}
	if got := snap.RewardCount[1]; got != 2 {
		t.Errorf("state 1 reward count = %d, want 2", got)
	}
	if got := snap.MeanReward[2]; math.Abs(got+1.0) > 1e-12 {
		t.Errorf("state 2 mean reward = %g, want -1", got)
	}
	if snap.MeanReward[0] != 0 || snap.RewardCount[0] != 0 {
		t.Errorf("untouched state 0 has reward attribution %g/%d",
			snap.MeanReward[0], snap.RewardCount[0])
	}
}

func TestGreedyActionStableAndRNGFree(t *testing.T) {
	tab := newTest(QLearning, 1) // always-explore table
	tab.SetQ(0, 1, 5)
	tab.SetQ(0, 2, 5) // tie: lowest index wins
	for i := 0; i < 10; i++ {
		if got := tab.GreedyAction(0); got != 1 {
			t.Fatalf("GreedyAction = %d, want 1 (stable tie-break)", got)
		}
	}
	// GreedyAction must not consume randomness: two same-seed tables
	// stay in lock-step even if one queried GreedyAction in between.
	a, b := newTest(QLearning, 1), newTest(QLearning, 1)
	for i := 0; i < 50; i++ {
		a.GreedyAction(0)
		if a.Choose(0) != b.Choose(0) {
			t.Fatal("GreedyAction consumed RNG state")
		}
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	tab := newTest(SARSA, 0.3)
	for i := 0; i < 20; i++ {
		a := tab.Choose(i % 4)
		tab.Update(i%4, a, float64(i), (i+1)%4, 0)
	}
	snap := tab.Snapshot()
	if snap.Algorithm != "sarsa" || snap.States != 4 || snap.Actions != 3 {
		t.Fatalf("snapshot header = %q %dx%d", snap.Algorithm, snap.States, snap.Actions)
	}
	if snap.Updates != tab.Updates() {
		t.Errorf("snapshot updates = %d, want %d", snap.Updates, tab.Updates())
	}
	for st := 0; st < 4; st++ {
		for a := 0; a < 3; a++ {
			if snap.Q[st][a] != tab.Q(st, a) {
				t.Errorf("snapshot Q[%d][%d] = %g, want %g", st, a, snap.Q[st][a], tab.Q(st, a))
			}
		}
		if snap.Greedy[st] != tab.GreedyAction(st) {
			t.Errorf("snapshot greedy[%d] = %d, want %d", st, snap.Greedy[st], tab.GreedyAction(st))
		}
	}
	// Mutating the snapshot must not leak back into the table.
	before := tab.Q(0, 0)
	snap.Q[0][0] = 999
	snap.Visits[0] = 999
	snap.MeanReward[0] = 999
	if tab.Q(0, 0) != before {
		t.Error("snapshot Q aliases table storage")
	}
	if tab.Snapshot().Visits[0] == 999 {
		t.Error("snapshot visits alias table storage")
	}
}

func TestCloneCopiesExplainabilityState(t *testing.T) {
	tab := newTest(QLearning, 0.3)
	for i := 0; i < 12; i++ {
		a := tab.Choose(1)
		tab.Update(1, a, 1.5, 1, 0)
	}
	cl := tab.Clone()
	orig, cloned := tab.Snapshot(), cl.Snapshot()
	if orig.Visits[1] != cloned.Visits[1] || orig.RewardCount[1] != cloned.RewardCount[1] {
		t.Fatal("clone dropped visit/reward accounting")
	}
	cl.Choose(1)
	if tab.Snapshot().Visits[1] != orig.Visits[1] {
		t.Error("clone shares visit counters with original")
	}
}
