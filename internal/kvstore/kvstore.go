// Package kvstore implements a memcached-like in-memory key-value store
// over a virtual address space, the substrate behind the paper's YCSB
// workloads (Table 3: "In-Memory Database", 32GB footprint).
//
// Like memcached, the store consists of a hash index and slab-allocated
// values. Only the index metadata is held in real memory; values occupy
// *virtual* addresses, and every operation reports the addresses it would
// touch (bucket probes, item header, value bytes) through a touch
// callback. This yields the YCSB access pattern the paper measured —
// hash-scattered index probes plus value reads whose popularity follows
// the YCSB request distribution — without materializing tens of GB.
package kvstore

import "fmt"

// Touch reports one logical memory access at a virtual address.
type Touch func(addr uint64, write bool)

// Config sizes a Store.
type Config struct {
	// Base is the first virtual address of the store's region.
	Base uint64
	// NumBuckets is the hash-index size. Should be on the order of the
	// expected item count for O(1) chains.
	NumBuckets int
	// BucketBytes is the virtual size of one index bucket.
	BucketBytes int64
	// ValueBytes is the virtual size of each stored value (memcached
	// slab class). YCSB's default record is 1KB.
	ValueBytes int64
	// ValueTouchStride is the spacing of reported touches within a value
	// read/write; 0 defaults to 256 (one touch per 4 cachelines,
	// approximating a streaming copy with hardware prefetch).
	ValueTouchStride int64
}

// DefaultConfig returns a store layout for about numItems records of 1KB.
func DefaultConfig(base uint64, numItems int) Config {
	return Config{
		Base:        base,
		NumBuckets:  numItems,
		BucketBytes: 64,
		ValueBytes:  1024,
	}
}

// Store is the key-value store. It is not safe for concurrent use.
type Store struct {
	cfg      Config
	slabBase uint64
	nextSlab uint64
	end      uint64
	// items maps key → virtual value address. This is the only real
	// memory the store consumes (16 bytes per item plus map overhead).
	items map[uint64]uint64

	gets, puts, hits uint64
}

// New returns an empty store. It panics on a non-positive geometry.
func New(cfg Config) *Store {
	if cfg.NumBuckets <= 0 || cfg.BucketBytes <= 0 || cfg.ValueBytes <= 0 {
		panic(fmt.Sprintf("kvstore: invalid config %+v", cfg))
	}
	if cfg.ValueTouchStride <= 0 {
		cfg.ValueTouchStride = 256
	}
	s := &Store{
		cfg:   cfg,
		items: make(map[uint64]uint64),
	}
	s.slabBase = cfg.Base + uint64(cfg.NumBuckets)*uint64(cfg.BucketBytes)
	s.nextSlab = s.slabBase
	s.end = s.slabBase
	return s
}

// Len returns the number of stored items.
func (s *Store) Len() int { return len(s.items) }

// Footprint returns the virtual bytes spanned so far (index + slabs).
func (s *Store) Footprint() int64 { return int64(s.end - s.cfg.Base) }

// FootprintFor predicts the footprint after storing numItems items.
func (c Config) FootprintFor(numItems int) int64 {
	vb := c.ValueBytes
	return int64(c.NumBuckets)*c.BucketBytes + int64(numItems)*vb
}

// Stats returns operation counters: total gets, puts, and get hits.
func (s *Store) Stats() (gets, puts, hits uint64) { return s.gets, s.puts, s.hits }

// bucketAddr returns the index-bucket address for a key.
func (s *Store) bucketAddr(key uint64) uint64 {
	h := key * 0x9e3779b97f4a7c15
	return s.cfg.Base + (h%uint64(s.cfg.NumBuckets))*uint64(s.cfg.BucketBytes)
}

// touchValue reports the touches of reading or writing a whole value.
func (s *Store) touchValue(addr uint64, write bool, touch Touch) {
	for off := int64(0); off < s.cfg.ValueBytes; off += s.cfg.ValueTouchStride {
		touch(addr+uint64(off), write)
	}
}

// Put stores (or overwrites) key, reporting its accesses.
func (s *Store) Put(key uint64, touch Touch) {
	s.puts++
	touch(s.bucketAddr(key), true)
	addr, ok := s.items[key]
	if !ok {
		addr = s.nextSlab
		s.nextSlab += uint64(s.cfg.ValueBytes)
		s.end = s.nextSlab
		s.items[key] = addr
	}
	s.touchValue(addr, true, touch)
}

// Get looks up key, reporting its accesses, and returns whether it hit.
func (s *Store) Get(key uint64, touch Touch) bool {
	s.gets++
	touch(s.bucketAddr(key), false)
	addr, ok := s.items[key]
	if !ok {
		return false
	}
	s.hits++
	s.touchValue(addr, false, touch)
	return true
}

// ReadModifyWrite performs YCSB workload F's operation: read the value,
// then write it back.
func (s *Store) ReadModifyWrite(key uint64, touch Touch) bool {
	if !s.Get(key, touch) {
		return false
	}
	touch(s.bucketAddr(key), false)
	addr := s.items[key]
	s.touchValue(addr, true, touch)
	s.puts++
	return true
}
