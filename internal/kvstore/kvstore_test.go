package kvstore

import (
	"testing"
	"testing/quick"
)

func collect() (Touch, *[]uint64, *[]bool) {
	addrs := &[]uint64{}
	writes := &[]bool{}
	return func(a uint64, w bool) {
		*addrs = append(*addrs, a)
		*writes = append(*writes, w)
	}, addrs, writes
}

func testStore() *Store {
	return New(Config{Base: 1 << 20, NumBuckets: 128, BucketBytes: 64,
		ValueBytes: 1024, ValueTouchStride: 256})
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{NumBuckets: 0, BucketBytes: 64, ValueBytes: 64},
		{NumBuckets: 4, BucketBytes: 0, ValueBytes: 64},
		{NumBuckets: 4, BucketBytes: 64, ValueBytes: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestPutThenGet(t *testing.T) {
	s := testStore()
	touch, _, _ := collect()
	s.Put(42, touch)
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Get(42, touch) {
		t.Fatal("Get(42) missed after Put")
	}
	if s.Get(43, touch) {
		t.Fatal("Get(43) hit without Put")
	}
	gets, puts, hits := s.Stats()
	if gets != 2 || puts != 1 || hits != 1 {
		t.Errorf("stats = %d/%d/%d, want 2/1/1", gets, puts, hits)
	}
}

func TestPutOverwriteReusesSlab(t *testing.T) {
	s := testStore()
	touch, _, _ := collect()
	s.Put(1, touch)
	f1 := s.Footprint()
	s.Put(1, touch) // overwrite: no new slab
	if s.Footprint() != f1 {
		t.Errorf("overwrite grew footprint %d → %d", f1, s.Footprint())
	}
	s.Put(2, touch)
	if s.Footprint() != f1+1024 {
		t.Errorf("new key grew footprint to %d, want %d", s.Footprint(), f1+1024)
	}
}

func TestGetTouchesBucketThenValue(t *testing.T) {
	s := testStore()
	touch, addrs, writes := collect()
	s.Put(7, touch)
	*addrs, *writes = nil, nil
	s.Get(7, touch)
	// 1 bucket probe + 1024/256 = 4 value touches.
	if len(*addrs) != 5 {
		t.Fatalf("Get touched %d addresses, want 5", len(*addrs))
	}
	// Bucket probe lies in the index region, value touches in the slab.
	idxEnd := uint64(1<<20) + 128*64
	if (*addrs)[0] >= idxEnd {
		t.Errorf("first touch %#x not in index region", (*addrs)[0])
	}
	for _, a := range (*addrs)[1:] {
		if a < idxEnd {
			t.Errorf("value touch %#x inside index region", a)
		}
	}
	for i, w := range *writes {
		if w {
			t.Errorf("touch %d of a Get was a write", i)
		}
	}
}

func TestValueTouchesAreContiguousStride(t *testing.T) {
	s := testStore()
	touch, addrs, _ := collect()
	s.Put(9, touch)
	*addrs = nil
	s.Get(9, touch)
	vt := (*addrs)[1:]
	for i := 1; i < len(vt); i++ {
		if vt[i]-vt[i-1] != 256 {
			t.Errorf("value touch stride %d, want 256", vt[i]-vt[i-1])
		}
	}
}

func TestMissTouchesOnlyBucket(t *testing.T) {
	s := testStore()
	touch, addrs, _ := collect()
	s.Get(999, touch)
	if len(*addrs) != 1 {
		t.Errorf("miss touched %d addresses, want 1", len(*addrs))
	}
}

func TestReadModifyWrite(t *testing.T) {
	s := testStore()
	touch, addrs, writes := collect()
	if s.ReadModifyWrite(5, touch) {
		t.Fatal("RMW hit on absent key")
	}
	s.Put(5, touch)
	*addrs, *writes = nil, nil
	if !s.ReadModifyWrite(5, touch) {
		t.Fatal("RMW missed present key")
	}
	// Read pass (5 touches, no writes) + write pass (1 bucket read + 4
	// value writes).
	nw := 0
	for _, w := range *writes {
		if w {
			nw++
		}
	}
	if nw != 4 {
		t.Errorf("RMW produced %d writes, want 4 value writes", nw)
	}
	_, puts, _ := s.Stats()
	if puts != 2 { // initial Put + RMW's write-back
		t.Errorf("puts = %d, want 2", puts)
	}
}

func TestFootprintFor(t *testing.T) {
	cfg := Config{Base: 0, NumBuckets: 100, BucketBytes: 64, ValueBytes: 1024}
	want := int64(100*64 + 50*1024)
	if got := cfg.FootprintFor(50); got != want {
		t.Errorf("FootprintFor = %d, want %d", got, want)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(4096, 1000)
	if cfg.Base != 4096 || cfg.NumBuckets != 1000 || cfg.ValueBytes != 1024 {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
	s := New(cfg)
	s.Put(1, func(uint64, bool) {})
	if s.Footprint() <= 0 {
		t.Error("footprint not positive after a put")
	}
}

// Property: Get hits exactly the set of keys previously Put, and all
// touches stay within [Base, Base+Footprint).
func TestStoreConsistencyProperty(t *testing.T) {
	f := func(putKeys, probeKeys []uint64) bool {
		s := testStore()
		inStore := map[uint64]bool{}
		nop := func(uint64, bool) {}
		for _, k := range putKeys {
			s.Put(k, nop)
			inStore[k] = true
		}
		ok := true
		check := func(a uint64, _ bool) {
			lo := uint64(1 << 20)
			if a < lo || a >= lo+uint64(s.Footprint()) {
				ok = false
			}
		}
		for _, k := range probeKeys {
			if s.Get(k, check) != inStore[k] {
				return false
			}
		}
		return ok && s.Len() == len(inStore)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGet(b *testing.B) {
	s := New(DefaultConfig(0, 100000))
	nop := func(uint64, bool) {}
	for k := uint64(0); k < 100000; k++ {
		s.Put(k, nop)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Get(uint64(i)%100000, nop)
	}
}
