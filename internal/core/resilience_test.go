package core

import (
	"sync/atomic"
	"testing"
	"time"

	"artmem/internal/faultinject"
	"artmem/internal/lru"
	"artmem/internal/memsim"
)

// scriptedInjector fails exactly the MovePage attempts whose 0-based
// index appears in failAt, and (optionally) drops all samples while
// dropSamples is set. It implements both memsim.FaultInjector and
// pebs.Injector, like the real chaos injector.
type scriptedInjector struct {
	failAt      map[int]bool
	failAll     bool
	attempt     int
	dropSamples atomic.Bool
}

func (s *scriptedInjector) FailMigration(now int64) bool {
	fail := s.failAll || s.failAt[s.attempt]
	s.attempt++
	return fail
}

func (s *scriptedInjector) BandwidthFactor(now int64) float64 { return 1 }
func (s *scriptedInjector) DropSample(now int64) bool         { return s.dropSamples.Load() }
func (s *scriptedInjector) RingOverflow(now int64) bool       { return false }

// checkListTierConsistency verifies every listed page is on a list of
// the tier it actually resides in — the list/tier divergence the
// transactional migration path must prevent.
func checkListTierConsistency(t *testing.T, a *ArtMem, m *memsim.Machine) {
	t.Helper()
	for p := 0; p < m.NumPages(); p++ {
		id := a.lists.ListOf(memsim.PageID(p))
		if id == lru.None {
			continue
		}
		if lru.TierOf(id) != m.TierOf(memsim.PageID(p)) {
			t.Fatalf("page %d on list %v but resident in %v tier",
				p, id, m.TierOf(memsim.PageID(p)))
		}
	}
}

func TestMigrateSkipsBusyCandidatesAndContinues(t *testing.T) {
	a, m := buildHotColdMachine(t, Config{})
	inj := &scriptedInjector{failAll: true}
	m.SetFaultInjector(inj)

	before := m.Counters()
	n := a.migrate(8)
	if n != 0 {
		t.Fatalf("migrate under total outage promoted %d pages", n)
	}
	if m.Counters().Migrations != before.Migrations {
		t.Errorf("pages migrated despite outage")
	}
	fs := a.FaultStats()
	// Every candidate's demotion is retried (default 3 retries) and then
	// skipped — skip-and-continue, not abort-the-period.
	if fs.SkippedPages == 0 {
		t.Error("no skipped pages recorded")
	}
	if fs.SkippedPages < 2 {
		t.Errorf("skipped %d candidates; the loop should continue past the first failure", fs.SkippedPages)
	}
	if fs.Retries == 0 {
		t.Error("no retries recorded")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Errorf("invariants after outage: %v", err)
	}
	checkListTierConsistency(t, a, m)

	// When the outage lifts, the same migration succeeds.
	inj.failAll = false
	if n := a.migrate(8); n == 0 {
		t.Error("migration did not recover after the outage lifted")
	}
	checkListTierConsistency(t, a, m)
}

func TestMigrateRetriesTransientFailure(t *testing.T) {
	a, m := buildHotColdMachine(t, Config{})
	// Fail only the very first attempt (the first demotion); the retry
	// succeeds, so the full migration still completes.
	inj := &scriptedInjector{failAt: map[int]bool{0: true}}
	m.SetFaultInjector(inj)

	if n := a.migrate(4); n != 4 {
		t.Fatalf("migrate(4) promoted %d despite a retryable fault", n)
	}
	fs := a.FaultStats()
	if fs.Retries != 1 {
		t.Errorf("retries = %d, want 1", fs.Retries)
	}
	if fs.SkippedPages != 0 {
		t.Errorf("skipped = %d, want 0", fs.SkippedPages)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
	checkListTierConsistency(t, a, m)
}

func TestMigrateRollsBackDemotionWhenPromotionFails(t *testing.T) {
	a, m := buildHotColdMachine(t, Config{})
	// Attempt 0: the demotion, succeeds. Attempts 1-4: the promotion
	// plus its three retries, all fail. Attempt 5: the rollback
	// re-promotion of the victim, succeeds.
	inj := &scriptedInjector{failAt: map[int]bool{1: true, 2: true, 3: true, 4: true}}
	m.SetFaultInjector(inj)

	fastUsedBefore := m.UsedPages(memsim.Fast)
	n := a.migrate(1)
	if n != 0 {
		t.Fatalf("promoted %d, want 0 (promotion was scripted to fail)", n)
	}
	fs := a.FaultStats()
	if fs.Rollbacks != 1 {
		t.Errorf("rollbacks = %d, want 1", fs.Rollbacks)
	}
	if fs.SkippedPages != 1 {
		t.Errorf("skipped = %d, want 1", fs.SkippedPages)
	}
	// The rolled-back victim is resident in the fast tier again: the
	// failed transaction did not leak fast-tier capacity.
	if got := m.UsedPages(memsim.Fast); got != fastUsedBefore {
		t.Errorf("fast tier used %d pages, want %d after rollback", got, fastUsedBefore)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
	checkListTierConsistency(t, a, m)
}

func TestMigrateStopsDemotingWhenSlowTierFull(t *testing.T) {
	// Both tiers full: demotion must fail with ErrTierFull, which ends
	// the period (nothing can be freed) instead of skipping candidate by
	// candidate.
	cfg := memsim.DefaultConfig(64*64*1024, 16*64*1024, 64*1024)
	cfg.CacheLines = 0
	cfg.Slow.CapacityPages = 48
	m := memsim.NewMachine(cfg)
	a := New(Config{SamplePeriod: 1, Epsilon: 0.0001})
	a.Attach(m)
	ps := uint64(m.PageSize())
	for p := uint64(0); p < 64; p++ {
		m.Access(p*ps, false)
	}
	for round := 0; round < 20; round++ {
		for p := uint64(16); p < 32; p++ {
			m.Access(p*ps, false)
		}
	}
	a.PumpSamples()

	if n := a.migrate(8); n != 0 {
		t.Fatalf("promoted %d with both tiers full", n)
	}
	fs := a.FaultStats()
	if fs.TierFullStops != 1 {
		t.Errorf("tier-full stops = %d, want 1", fs.TierFullStops)
	}
	if fs.SkippedPages != 0 {
		t.Errorf("tier-full must stop the period, not skip (%d skips)", fs.SkippedPages)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// driveTicks performs a round of accesses and one decision tick.
func driveTicks(a *ArtMem, m *memsim.Machine, ticks int) {
	ps := uint64(m.PageSize())
	for i := 0; i < ticks; i++ {
		for p := uint64(0); p < 32; p++ {
			m.Access(p*ps, false)
		}
		a.Tick(m.Now())
	}
}

func TestDegradedModeFallsBackAndReengages(t *testing.T) {
	inj := &scriptedInjector{}
	inj.dropSamples.Store(true)
	m := testMachine(16)
	m.SetFaultInjector(inj) // before Attach, so the sampler is wired too
	a := New(Config{SamplePeriod: 1})
	a.Attach(m)

	// Every window is empty while samples are dropped: after
	// DegradeAfter (default 8) consecutive empty windows the agent must
	// fall back to the heuristic.
	driveTicks(a, m, 8)
	if !a.Degraded() {
		t.Fatalf("not degraded after 8 empty windows (streak %d)", a.noSampleStreak)
	}
	fs := a.FaultStats()
	if fs.DegradedEntries != 1 {
		t.Errorf("degraded entries = %d, want 1", fs.DegradedEntries)
	}
	// Degraded ticks still migrate via the heuristic: threshold pinned
	// to the capacity-derived value.
	driveTicks(a, m, 4)
	if got := a.Threshold(); got != a.capacityThreshold() {
		t.Errorf("degraded threshold = %d, want capacity-derived %d", got, a.capacityThreshold())
	}
	if a.FaultStats().DegradedTicks < 5 {
		t.Errorf("degraded ticks = %d, want >= 5", a.FaultStats().DegradedTicks)
	}

	// Samples return: RL re-engages on the first non-empty window.
	inj.dropSamples.Store(false)
	updatesBefore := a.qMig.Updates()
	driveTicks(a, m, 1)
	if a.Degraded() {
		t.Fatal("still degraded after samples returned")
	}
	if a.qMig.Updates() != updatesBefore {
		t.Error("re-engagement tick performed a Q update across the degraded gap")
	}
	// The next tick resumes normal Q-learning.
	driveTicks(a, m, 2)
	if a.qMig.Updates() == updatesBefore {
		t.Error("RL did not resume after re-engagement")
	}
}

func TestDegradeAfterDisabled(t *testing.T) {
	inj := &scriptedInjector{}
	inj.dropSamples.Store(true)
	m := testMachine(16)
	m.SetFaultInjector(inj)
	a := New(Config{SamplePeriod: 1, DegradeAfter: -1})
	a.Attach(m)
	driveTicks(a, m, 30)
	if a.Degraded() {
		t.Error("degradation tripped despite DegradeAfter < 0")
	}
}

func TestSystemHealthAndWatchdogBeats(t *testing.T) {
	s := NewSystem(testSystemConfig())
	s.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := s.Health()
		if h.SamplingBeats > 0 && h.MigrationBeats > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker heartbeats did not advance: %+v", h)
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if h := s.Health(); h.Panics != 0 {
		t.Errorf("panics = %d in a healthy run", h.Panics)
	}
}

func TestSystemRecoversFromPolicyPanics(t *testing.T) {
	cfg := testSystemConfig()
	// A Debug hook that panics models a crashing policy tick: the
	// migration thread must recover and keep running.
	cfg.Policy.Debug = func(format string, args ...any) { panic("injected tick panic") }
	s := NewSystem(cfg)
	s.Start()
	// Feed accesses so ticks take the RL path (which calls Debug).
	deadline := time.Now().Add(5 * time.Second)
	for s.Health().Panics == 0 {
		for p := uint64(0); p < 32; p++ {
			s.Access(p*64*1024, false)
		}
		if time.Now().After(deadline) {
			t.Fatal("no panic was recovered")
		}
		time.Sleep(time.Millisecond)
	}
	// The system is still alive: sampling continues and Stop returns.
	before := s.Health().SamplingBeats
	deadline = time.Now().Add(5 * time.Second)
	for s.Health().SamplingBeats == before {
		if time.Now().After(deadline) {
			t.Fatal("sampling thread died after the panic")
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() { s.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop deadlocked after recovered panics")
	}
}

func TestSystemChaosNeverDeadlocks(t *testing.T) {
	cfg := testSystemConfig()
	cfg.WatchdogInterval = 10 * time.Millisecond
	cfg.Faults = &faultinject.Config{
		Seed:               11,
		MigrationFailProb:  0.3,
		MigrationBurstMean: 4,
		SampleDropPeriodic: faultinject.Periodic{PeriodNs: 200_000, DurationNs: 100_000},
	}
	s := NewSystem(cfg)
	if s.Injector() == nil {
		t.Fatal("injector not installed from SystemConfig.Faults")
	}
	s.Start()
	stop := time.After(150 * time.Millisecond)
drive:
	for {
		select {
		case <-stop:
			break drive
		default:
			for p := uint64(0); p < 64; p++ {
				s.Access(p*64*1024, p%5 == 0)
			}
		}
	}
	done := make(chan struct{})
	go func() { s.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop deadlocked under fault injection")
	}
	if err := s.Machine().CheckInvariants(); err != nil {
		t.Errorf("invariants after chaos run: %v", err)
	}
	if h := s.Health(); h.Panics != 0 {
		t.Errorf("unexpected panics: %d", h.Panics)
	}
}
