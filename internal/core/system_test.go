package core

import (
	"testing"
	"time"

	"artmem/internal/memsim"
)

func testSystemConfig() SystemConfig {
	mcfg := memsim.DefaultConfig(64*64*1024, 16*64*1024, 64*1024)
	mcfg.CacheLines = 0
	return SystemConfig{
		Machine:           mcfg,
		Policy:            Config{SamplePeriod: 1},
		SamplingInterval:  500 * time.Microsecond,
		MigrationInterval: time.Millisecond,
	}
}

func TestSystemStartStopIdempotent(t *testing.T) {
	s := NewSystem(testSystemConfig())
	s.Start()
	s.Start() // no-op
	s.Stop()
	s.Stop() // no-op
}

func TestSystemStopWithoutStart(t *testing.T) {
	s := NewSystem(testSystemConfig())
	s.Stop() // must not hang or panic
}

func TestSystemAccessAndCounters(t *testing.T) {
	s := NewSystem(testSystemConfig())
	s.Start()
	defer s.Stop()
	for i := 0; i < 1000; i++ {
		s.Access(uint64(i*64)%uint64(64*64*1024), i%4 == 0)
	}
	c := s.Counters()
	if c.FastAccesses+c.SlowAccesses != 1000 {
		t.Errorf("accesses = %d, want 1000", c.FastAccesses+c.SlowAccesses)
	}
	if s.Now() <= 0 {
		t.Errorf("virtual time did not advance")
	}
}

func TestSystemAccessBatch(t *testing.T) {
	s := NewSystem(testSystemConfig())
	addrs := make([]uint64, 100)
	writes := make([]bool, 100)
	for i := range addrs {
		addrs[i] = uint64(i * 64)
		writes[i] = i%2 == 0
	}
	s.AccessBatch(addrs, writes)
	c := s.Counters()
	if c.FastAccesses+c.SlowAccesses != 100 {
		t.Errorf("batch accesses = %d", c.FastAccesses+c.SlowAccesses)
	}
}

// The background threads must migrate a hot-in-slow working set into the
// fast tier while the application keeps accessing it.
func TestSystemBackgroundMigration(t *testing.T) {
	s := NewSystem(testSystemConfig())
	m := s.Machine()
	ps := uint64(m.PageSize())
	// First-touch: 16 cold pages fill fast, pages 16..31 land in slow.
	for p := uint64(0); p < 32; p++ {
		s.Access(p*ps, false)
	}
	s.Start()
	defer s.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for rep := 0; rep < 50; rep++ {
			for p := uint64(16); p < 32; p++ {
				s.Access(p*ps, false)
			}
		}
		if c := s.Counters(); c.Promotions >= 8 {
			return // background migration worked
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Errorf("background threads promoted only %d pages in 5s",
		s.Counters().Promotions)
}

func TestSystemDecisionsAdvance(t *testing.T) {
	s := NewSystem(testSystemConfig())
	s.Start()
	defer s.Stop()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		s.Access(0, false)
		if s.Policy().Decisions() >= 3 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("migration thread made %d decisions in 3s", s.Policy().Decisions())
}

// A short soak: several application goroutines hammer the system while
// the background threads sample and migrate; counters must stay
// consistent and nothing may deadlock. The race detector covers the
// synchronization when run with -race.
func TestSystemSoakConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	s := NewSystem(testSystemConfig())
	s.Start()
	defer s.Stop()
	const clients = 4
	const perClient = 20000
	done := make(chan struct{})
	for c := 0; c < clients; c++ {
		go func(seed uint64) {
			defer func() { done <- struct{}{} }()
			x := seed
			for i := 0; i < perClient; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				s.Access(x%(64*64*1024), x&1 == 0)
			}
		}(uint64(c + 1))
	}
	for c := 0; c < clients; c++ {
		<-done
	}
	ctr := s.Counters()
	total := ctr.FastAccesses + ctr.SlowAccesses + ctr.CacheHits
	if total != clients*perClient {
		t.Errorf("accesses = %d, want %d", total, clients*perClient)
	}
	if s.Now() <= 0 {
		t.Errorf("clock did not advance")
	}
}
