package core

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"
)

// getHealthz fetches /healthz from a handler-backed test server and
// returns the status code and decoded body.
func getHealthz(t *testing.T, srv *httptest.Server) (int, map[string]any) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("healthz body not JSON: %v\n%s", err, body)
	}
	return resp.StatusCode, doc
}

// TestHealthzSchemaPin pins the /healthz document: the exact key set,
// the status values, and the status codes. Load balancers and the CI
// loadtest smoke parse this — adding a key is fine elsewhere, but
// these keys must not change meaning or disappear.
func TestHealthzSchemaPin(t *testing.T) {
	s := NewSystem(testSystemConfig())
	srv := httptest.NewServer(s.ControlHandler())
	defer srv.Close()

	code, doc := getHealthz(t, srv)
	if code != 200 {
		t.Fatalf("fresh system healthz status code = %d", code)
	}
	want := []string{
		"status", "degraded", "draining",
		"sampling_beats", "migration_beats", "watchdog_stalls", "panics",
	}
	if len(doc) != len(want) {
		t.Errorf("healthz has %d keys, schema pins %d: %v", len(doc), len(want), doc)
	}
	for _, k := range want {
		if _, ok := doc[k]; !ok {
			t.Errorf("healthz missing pinned key %q: %v", k, doc)
		}
	}
	if doc["status"] != "ok" || doc["degraded"] != false || doc["draining"] != false {
		t.Errorf("fresh system healthz = %v, want ok/false/false", doc)
	}

	// Heuristic fallback: still 200 (the daemon serves traffic), but
	// the body says degraded.
	s.mu.Lock()
	s.pol.degraded = true
	s.mu.Unlock()
	if code, doc := getHealthz(t, srv); code != 200 || doc["status"] != "degraded" {
		t.Errorf("degraded healthz = %d %v, want 200/degraded", code, doc)
	}

	// Graceful shutdown: 503 so balancers stop routing, and draining
	// wins over degraded in the status string.
	s.SetDraining(true)
	if code, doc := getHealthz(t, srv); code != 503 || doc["status"] != "draining" || doc["draining"] != true {
		t.Errorf("draining healthz = %d %v, want 503/draining", code, doc)
	}
}

// TestHealthzMultiSystem checks the multi-tenant daemon serves the
// same document from its control surface.
func TestHealthzMultiSystem(t *testing.T) {
	s := NewMultiSystem(testMultiConfig())
	srv := httptest.NewServer(s.ControlHandler())
	defer srv.Close()

	code, doc := getHealthz(t, srv)
	if code != 200 || doc["status"] != "ok" {
		t.Fatalf("multi healthz = %d %v, want 200/ok", code, doc)
	}
	s.SetDraining(true)
	if code, doc := getHealthz(t, srv); code != 503 || doc["status"] != "draining" {
		t.Errorf("draining multi healthz = %d %v, want 503/draining", code, doc)
	}
}
