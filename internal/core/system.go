package core

import (
	"sync"
	"sync/atomic"
	"time"

	"artmem/internal/faultinject"
	"artmem/internal/memsim"
	"artmem/internal/telemetry"
)

// System is the online ArtMem runtime: it wraps a machine and runs the
// policy's sampling and migration work on dedicated background
// goroutines — the userspace analogue of the paper's per-CPU ksampled
// threads and the kmigrated kernel thread (§4.4). Application goroutines
// drive memory accesses through Access; the background threads operate
// asynchronously and never appear on the access path's critical section
// longer than one sampling drain.
//
// The paper's kernel prototype exposes the agent↔environment channel
// through cgroup pseudo-files (memory.hit_ratio_show and friends); here
// the channel is the ArtMem policy object itself, reachable via Policy.
//
// Resilience: both worker threads recover from panics (a crashing policy
// tick must not take the daemon down), and a watchdog thread observes
// per-worker heartbeats so a stalled loop is detected and surfaced
// through Health rather than silently freezing the control loop.
type System struct {
	mu  sync.Mutex
	m   *memsim.Machine
	pol *ArtMem

	injector *faultinject.Injector

	samplingInterval  time.Duration
	migrationInterval time.Duration
	watchdogInterval  time.Duration

	stop chan struct{}
	wg   sync.WaitGroup

	started bool

	// Telemetry: the registry + decision trace shared with the policy
	// and served over /metrics and /trace.
	tel *telemetry.Set

	// Liveness accounting, written by the worker threads and read by the
	// watchdog and Health without taking mu. The counters live on the
	// telemetry registry (atomic underneath), so they show up on
	// /metrics without separate plumbing.
	sampleBeats   *telemetry.Counter
	migrateBeats  *telemetry.Counter
	sampleStalls  *telemetry.Counter
	migrateStalls *telemetry.Counter
	panics        *telemetry.Counter
	ctlBusy       *telemetry.Counter

	// draining is set by the daemon during graceful shutdown so
	// /healthz can advertise the state to load balancers.
	draining atomic.Bool
}

// SystemConfig parameterizes an online System.
type SystemConfig struct {
	// Machine configures the simulated tiered memory.
	Machine memsim.Config
	// Policy configures the ArtMem agent.
	Policy Config
	// SamplingInterval is the real-time period of the sampling thread
	// (the paper's sampling thread wakes every 2ms). 0 uses 2ms.
	SamplingInterval time.Duration
	// MigrationInterval is the real-time period of the migration thread.
	// 0 uses 20ms (scaled down from the paper's seconds-long interval so
	// examples adapt within seconds).
	MigrationInterval time.Duration
	// WatchdogInterval is the real-time period of the liveness watchdog.
	// A worker thread whose heartbeat does not advance across one
	// interval is counted as stalled. 0 uses 1s; negative disables the
	// watchdog.
	WatchdogInterval time.Duration
	// Faults, when non-nil, installs a fault injector on the machine's
	// migration path and the agent's sampling path before the policy
	// attaches — chaos testing for the online runtime.
	Faults *faultinject.Config
	// Telemetry, when non-nil, is the registry + decision trace the
	// system instruments itself onto; nil creates a fresh set. Two
	// Systems must not share one set (metric names would collide).
	Telemetry *telemetry.Set
	// TraceCapacity bounds the decision-trace ring when Telemetry is
	// nil. 0 uses telemetry.DefaultTraceCap.
	TraceCapacity int
	// PageTraceSampleRate, when > 0, enables page-lifecycle tracing for
	// roughly one page in PageTraceSampleRate (rounded up to a power of
	// two; 1 traces every page), served over /pagetrace. 0 — the default
	// — keeps tracing off and every lifecycle hook a one-branch no-op.
	PageTraceSampleRate int
	// PageTraceCapacity bounds the page-trace ring. 0 uses
	// telemetry.DefaultPageTraceCap.
	PageTraceCapacity int
}

// NewSystem builds an online system. Call Start to launch the
// background threads and Stop to halt them.
func NewSystem(cfg SystemConfig) *System {
	if cfg.SamplingInterval == 0 {
		cfg.SamplingInterval = 2 * time.Millisecond
	}
	if cfg.MigrationInterval == 0 {
		cfg.MigrationInterval = 20 * time.Millisecond
	}
	if cfg.WatchdogInterval == 0 {
		cfg.WatchdogInterval = time.Second
	}
	m := memsim.NewMachine(cfg.Machine)
	var inj *faultinject.Injector
	if cfg.Faults != nil {
		inj = faultinject.New(*cfg.Faults)
		m.SetFaultInjector(inj)
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = &telemetry.Set{
			Registry: telemetry.NewRegistry(),
			Trace:    telemetry.NewTrace(cfg.TraceCapacity),
		}
	}
	if cfg.PageTraceSampleRate > 0 && tel.PageTrace == nil {
		// Must exist before Attach: the policy wires the lifecycle hooks
		// into the machine, sampler, and LRU lists there.
		tel.PageTrace = telemetry.NewPageTrace(cfg.PageTraceCapacity, cfg.PageTraceSampleRate)
	}
	pol := New(cfg.Policy)
	pol.SetTelemetry(tel)
	pol.Attach(m)
	s := &System{
		m:                 m,
		pol:               pol,
		injector:          inj,
		samplingInterval:  cfg.SamplingInterval,
		migrationInterval: cfg.MigrationInterval,
		watchdogInterval:  cfg.WatchdogInterval,
		stop:              make(chan struct{}),
		tel:               tel,
	}
	reg := tel.Registry
	s.sampleBeats = reg.Counter("artmem_sampling_beats_total",
		"Completed sampling-thread iterations (ksampled heartbeats).")
	s.migrateBeats = reg.Counter("artmem_migration_beats_total",
		"Completed migration-thread iterations (kmigrated heartbeats).")
	s.sampleStalls = reg.Counter("artmem_sampling_stalls_total",
		"Watchdog intervals in which the sampling thread made no progress.")
	s.migrateStalls = reg.Counter("artmem_migration_stalls_total",
		"Watchdog intervals in which the migration thread made no progress.")
	s.panics = reg.Counter("artmem_worker_panics_total",
		"Recovered panics in the worker threads.")
	s.ctlBusy = reg.Counter("artmem_control_busy_ns_total",
		"Wall nanoseconds the control loop held the system lock (sampling drains, migration passes) — the serve layer's migration-stall attribution source.")
	s.registerMetrics()
	return s
}

// ControlBusyNs returns the cumulative wall nanoseconds the control
// loop's worker threads held the system lock. Access batches contend
// with exactly that lock, so differencing this counter across a
// batch's queue residency attributes its migration/sampling stall
// (serve.Config.StallNs).
func (s *System) ControlBusyNs() int64 { return int64(s.ctlBusy.Value()) }

// SetDraining marks (or clears) the graceful-shutdown state advertised
// by /healthz. The control loop keeps running; this is pure signaling
// for load balancers.
func (s *System) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports the graceful-shutdown state set by SetDraining.
func (s *System) Draining() bool { return s.draining.Load() }

// Telemetry returns the system's registry + decision trace, the set
// served by the control endpoints.
func (s *System) Telemetry() *telemetry.Set { return s.tel }

// Machine returns the underlying machine. Callers must not use it
// concurrently with a started System except through System methods.
func (s *System) Machine() *memsim.Machine { return s.m }

// Policy returns the ArtMem agent (the paper's userspace-RL view).
func (s *System) Policy() *ArtMem { return s.pol }

// Injector returns the installed fault injector, or nil when the system
// runs fault-free.
func (s *System) Injector() *faultinject.Injector { return s.injector }

// Start launches the sampling, migration, and watchdog threads. It is a
// no-op if already started.
func (s *System) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.wg.Add(2)
	go s.samplingThread()
	go s.migrationThread()
	if s.watchdogInterval > 0 {
		s.wg.Add(1)
		go s.watchdogThread()
	}
}

// Stop halts the background threads and waits for them. Idempotent.
func (s *System) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
}

// Access performs one application memory access.
func (s *System) Access(addr uint64, write bool) {
	s.mu.Lock()
	s.m.Access(addr, write)
	s.mu.Unlock()
}

// AccessBatch performs a batch of application accesses under one lock
// acquisition. addrs and writes must have equal length.
func (s *System) AccessBatch(addrs []uint64, writes []bool) {
	s.mu.Lock()
	for i, a := range addrs {
		s.m.Access(a, writes[i])
	}
	s.mu.Unlock()
}

// Counters returns a snapshot of the machine's counters — the
// equivalent of reading the paper's memory.hit_ratio_show interface.
func (s *System) Counters() memsim.Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Counters()
}

// Now returns the machine's virtual time.
func (s *System) Now() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Now()
}

// Health is a snapshot of the runtime's liveness and resilience state.
type Health struct {
	// SamplingBeats and MigrationBeats count completed worker
	// iterations; a live system's beats keep advancing.
	SamplingBeats  uint64
	MigrationBeats uint64
	// SamplingStalls and MigrationStalls count watchdog intervals during
	// which the corresponding thread made no progress.
	SamplingStalls  uint64
	MigrationStalls uint64
	// Panics counts worker-thread panics that were recovered.
	Panics uint64
	// Degraded reports whether the agent is in the heuristic fallback.
	Degraded bool
}

// Health returns the runtime's liveness snapshot. Safe to call
// concurrently with a running System.
func (s *System) Health() Health {
	s.mu.Lock()
	degraded := s.pol.degraded
	s.mu.Unlock()
	return Health{
		SamplingBeats:   s.sampleBeats.Value(),
		MigrationBeats:  s.migrateBeats.Value(),
		SamplingStalls:  s.sampleStalls.Value(),
		MigrationStalls: s.migrateStalls.Value(),
		Panics:          s.panics.Value(),
		Degraded:        degraded,
	}
}

// SaveQTablesFile checkpoints the agent's Q-tables to path under the
// system lock, safe to call while the system is running. The paper
// primes its agent from previously saved tables (§6.2); the daemon uses
// this for periodic checkpointing so a restart resumes learning.
func (s *System) SaveQTablesFile(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pol.SaveQTablesFile(path)
}

// RestoreQTablesFile loads a Q-table checkpoint under the system lock.
// On any error the live tables are left untouched.
func (s *System) RestoreQTablesFile(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pol.RestoreQTablesFile(path)
}

// runProtected executes one worker iteration under the system lock,
// recovering from panics (the lock is released by the deferred unlock
// before the recover fires, so a panicking tick cannot poison the
// mutex). The beat advances only on successful iterations.
func (s *System) runProtected(beat *telemetry.Counter, f func()) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Inc()
		}
	}()
	s.mu.Lock()
	t0 := time.Now()
	defer func() {
		s.ctlBusy.Add(uint64(time.Since(t0)))
		s.mu.Unlock()
	}()
	f()
	beat.Inc()
}

// samplingThread mirrors ksampled: it periodically drains the PEBS
// buffer into the histogram and the recency lists.
func (s *System) samplingThread() {
	defer s.wg.Done()
	tick := time.NewTicker(s.samplingInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.runProtected(s.sampleBeats, s.pol.PumpSamples)
		}
	}
}

// migrationThread mirrors kmigrated: it periodically runs one RL
// decision period (Algorithm 1) and executes the chosen migrations.
func (s *System) migrationThread() {
	defer s.wg.Done()
	tick := time.NewTicker(s.migrationInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.runProtected(s.migrateBeats, func() { s.pol.Tick(s.m.Now()) })
		}
	}
}

// watchdogState is the watchdog's memory between checks: the heartbeat
// values seen at the previous interval. Extracted (together with
// watchdogCheck) so Health transitions are unit-testable without real
// timers.
type watchdogState struct {
	lastSample, lastMigrate uint64
}

// watchdogCheck performs one watchdog interval's work: any worker whose
// heartbeat did not advance since the previous check is counted as
// stalled. Stall counts are monotonic — a recovered thread stops
// accumulating them but past stalls remain visible in Health.
func (s *System) watchdogCheck(w *watchdogState) {
	if cur := s.sampleBeats.Value(); cur == w.lastSample {
		s.sampleStalls.Inc()
	} else {
		w.lastSample = cur
	}
	if cur := s.migrateBeats.Value(); cur == w.lastMigrate {
		s.migrateStalls.Inc()
	} else {
		w.lastMigrate = cur
	}
}

// watchdogThread checks once per interval that both workers' heartbeats
// advanced.
func (s *System) watchdogThread() {
	defer s.wg.Done()
	tick := time.NewTicker(s.watchdogInterval)
	defer tick.Stop()
	var w watchdogState
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.watchdogCheck(&w)
		}
	}
}
