package core

import (
	"sync"
	"time"

	"artmem/internal/memsim"
)

// System is the online ArtMem runtime: it wraps a machine and runs the
// policy's sampling and migration work on dedicated background
// goroutines — the userspace analogue of the paper's per-CPU ksampled
// threads and the kmigrated kernel thread (§4.4). Application goroutines
// drive memory accesses through Access; the background threads operate
// asynchronously and never appear on the access path's critical section
// longer than one sampling drain.
//
// The paper's kernel prototype exposes the agent↔environment channel
// through cgroup pseudo-files (memory.hit_ratio_show and friends); here
// the channel is the ArtMem policy object itself, reachable via Policy.
type System struct {
	mu  sync.Mutex
	m   *memsim.Machine
	pol *ArtMem

	samplingInterval  time.Duration
	migrationInterval time.Duration

	stop chan struct{}
	wg   sync.WaitGroup

	started bool
}

// SystemConfig parameterizes an online System.
type SystemConfig struct {
	// Machine configures the simulated tiered memory.
	Machine memsim.Config
	// Policy configures the ArtMem agent.
	Policy Config
	// SamplingInterval is the real-time period of the sampling thread
	// (the paper's sampling thread wakes every 2ms). 0 uses 2ms.
	SamplingInterval time.Duration
	// MigrationInterval is the real-time period of the migration thread.
	// 0 uses 20ms (scaled down from the paper's seconds-long interval so
	// examples adapt within seconds).
	MigrationInterval time.Duration
}

// NewSystem builds an online system. Call Start to launch the
// background threads and Stop to halt them.
func NewSystem(cfg SystemConfig) *System {
	if cfg.SamplingInterval == 0 {
		cfg.SamplingInterval = 2 * time.Millisecond
	}
	if cfg.MigrationInterval == 0 {
		cfg.MigrationInterval = 20 * time.Millisecond
	}
	m := memsim.NewMachine(cfg.Machine)
	pol := New(cfg.Policy)
	pol.Attach(m)
	return &System{
		m:                 m,
		pol:               pol,
		samplingInterval:  cfg.SamplingInterval,
		migrationInterval: cfg.MigrationInterval,
		stop:              make(chan struct{}),
	}
}

// Machine returns the underlying machine. Callers must not use it
// concurrently with a started System except through System methods.
func (s *System) Machine() *memsim.Machine { return s.m }

// Policy returns the ArtMem agent (the paper's userspace-RL view).
func (s *System) Policy() *ArtMem { return s.pol }

// Start launches the sampling and migration threads. It is a no-op if
// already started.
func (s *System) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.wg.Add(2)
	go s.samplingThread()
	go s.migrationThread()
}

// Stop halts the background threads and waits for them. Idempotent.
func (s *System) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
}

// Access performs one application memory access.
func (s *System) Access(addr uint64, write bool) {
	s.mu.Lock()
	s.m.Access(addr, write)
	s.mu.Unlock()
}

// AccessBatch performs a batch of application accesses under one lock
// acquisition. addrs and writes must have equal length.
func (s *System) AccessBatch(addrs []uint64, writes []bool) {
	s.mu.Lock()
	for i, a := range addrs {
		s.m.Access(a, writes[i])
	}
	s.mu.Unlock()
}

// Counters returns a snapshot of the machine's counters — the
// equivalent of reading the paper's memory.hit_ratio_show interface.
func (s *System) Counters() memsim.Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Counters()
}

// Now returns the machine's virtual time.
func (s *System) Now() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Now()
}

// samplingThread mirrors ksampled: it periodically drains the PEBS
// buffer into the histogram and the recency lists.
func (s *System) samplingThread() {
	defer s.wg.Done()
	tick := time.NewTicker(s.samplingInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.mu.Lock()
			s.pol.PumpSamples()
			s.mu.Unlock()
		}
	}
}

// migrationThread mirrors kmigrated: it periodically runs one RL
// decision period (Algorithm 1) and executes the chosen migrations.
func (s *System) migrationThread() {
	defer s.wg.Done()
	tick := time.NewTicker(s.migrationInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.mu.Lock()
			s.pol.Tick(s.m.Now())
			s.mu.Unlock()
		}
	}
}
