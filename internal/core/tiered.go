package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"artmem/internal/faultinject"
	"artmem/internal/memsim"
	"artmem/internal/telemetry"
	"artmem/internal/tier"
)

// TieredSystem is the N-tier online runtime: one two-tier ArtMem agent
// per tier boundary, driven by shared background threads, over a chain
// machine decomposed through a memsim.BoundaryHub. Where ShardedSystem
// splits the page space and gives each agent a whole private machine,
// TieredSystem splits the tier chain and gives each agent one adjacent
// tier pair — boundary b's agent promotes into tier b and demotes into
// tier b+1, and a page descends or climbs the hierarchy through a
// relay of boundary decisions (the same decomposition Nomad and
// multi-tier TPP apply to N-node systems).
//
// The machine itself is single-threaded, so like System everything —
// access path and control passes — serializes behind one lock; the
// per-boundary structure buys decision decomposition (each agent sees
// a two-tier problem with its own Q-tables), not access parallelism.
// Scale-out stays ShardedSystem's job.
type TieredSystem struct {
	mu     sync.Mutex
	m      *memsim.Machine
	hub    *memsim.BoundaryHub
	agents []*ArtMem
	// agentTels holds each boundary agent's private telemetry set:
	// ArtMem's metric names are fixed, so per-boundary agents cannot
	// share one registry (the ShardedSystem discipline).
	agentTels []*telemetry.Set

	budgets  *tier.Budgets
	injector *faultinject.Injector

	samplingInterval  time.Duration
	migrationInterval time.Duration
	watchdogInterval  time.Duration

	stop    chan struct{}
	wg      sync.WaitGroup
	runMu   sync.Mutex // guards started
	started bool

	tel *telemetry.Set

	sampleBeats   *telemetry.Counter
	migrateBeats  *telemetry.Counter
	sampleStalls  *telemetry.Counter
	migrateStalls *telemetry.Counter
	panics        *telemetry.Counter
	ctlBusy       *telemetry.Counter

	draining atomic.Bool
}

// TieredSystemConfig parameterizes a TieredSystem.
type TieredSystemConfig struct {
	// Machine configures the simulated memory; Machine.Chain selects
	// the hierarchy (nil runs the legacy two-tier pair as a one-boundary
	// chain).
	Machine memsim.Config
	// Policy configures the per-boundary ArtMem agents. Boundary b's
	// agent gets Seed+b so exploration decorrelates across boundaries
	// while staying deterministic.
	Policy Config
	// SamplingInterval, MigrationInterval and WatchdogInterval follow
	// SystemConfig's semantics and defaults.
	SamplingInterval  time.Duration
	MigrationInterval time.Duration
	WatchdogInterval  time.Duration
	// BoundaryBudget caps migrations per boundary per decision period
	// (the per-boundary analogue of the paper's migration quota,
	// enforced below the agents so a misbehaving boundary cannot starve
	// the others' bandwidth). 0 leaves boundaries unmetered.
	BoundaryBudget int
	// Faults, when non-nil, installs a fault injector on the machine's
	// migration path before the agents attach.
	Faults *faultinject.Config
	// Telemetry, when non-nil, receives the runtime's aggregate metrics;
	// nil creates a fresh set. Per-agent metrics live on private
	// per-boundary sets (AgentTelemetry).
	Telemetry *telemetry.Set
}

// NewTieredSystem builds the N-tier runtime. Call Start to launch the
// background threads and Stop to halt them.
func NewTieredSystem(cfg TieredSystemConfig) *TieredSystem {
	if cfg.SamplingInterval == 0 {
		cfg.SamplingInterval = 2 * time.Millisecond
	}
	if cfg.MigrationInterval == 0 {
		cfg.MigrationInterval = 20 * time.Millisecond
	}
	if cfg.WatchdogInterval == 0 {
		cfg.WatchdogInterval = time.Second
	}
	m := memsim.NewMachine(cfg.Machine)
	var inj *faultinject.Injector
	if cfg.Faults != nil {
		inj = faultinject.New(*cfg.Faults)
		m.SetFaultInjector(inj)
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.NewSet()
	}
	hub := memsim.NewBoundaryHub(m)
	s := &TieredSystem{
		m:                 m,
		hub:               hub,
		injector:          inj,
		samplingInterval:  cfg.SamplingInterval,
		migrationInterval: cfg.MigrationInterval,
		watchdogInterval:  cfg.WatchdogInterval,
		stop:              make(chan struct{}),
		tel:               tel,
	}
	if cfg.BoundaryBudget > 0 {
		s.budgets = tier.NewBudgets(hub.NumBoundaries(), cfg.BoundaryBudget)
		s.budgets.Reset()
		hub.SetBudgets(s.budgets)
	}
	for b := 0; b < hub.NumBoundaries(); b++ {
		pcfg := cfg.Policy
		pcfg.Seed += uint64(b)
		a := New(pcfg)
		at := telemetry.NewSet()
		a.SetTelemetry(at)
		a.AttachEnv(hub.View(b)) // pre-Start wiring; no lock needed yet
		s.agents = append(s.agents, a)
		s.agentTels = append(s.agentTels, at)
	}
	reg := tel.Registry
	s.sampleBeats = reg.Counter("artmem_tiered_sampling_beats_total",
		"Completed sampling passes over all boundary agents.")
	s.migrateBeats = reg.Counter("artmem_tiered_migration_beats_total",
		"Completed migration passes over all boundary agents.")
	s.sampleStalls = reg.Counter("artmem_tiered_sampling_stalls_total",
		"Watchdog intervals in which the sampling thread made no progress.")
	s.migrateStalls = reg.Counter("artmem_tiered_migration_stalls_total",
		"Watchdog intervals in which the migration thread made no progress.")
	s.panics = reg.Counter("artmem_tiered_worker_panics_total",
		"Recovered panics in the shared worker threads.")
	s.ctlBusy = reg.Counter("artmem_tiered_control_busy_ns_total",
		"Wall nanoseconds the control threads held the system lock — the serve layer's stall-attribution source.")
	reg.GaugeFunc("artmem_tiered_boundaries",
		"Tier-boundary count of the chain machine (agents running).",
		func() float64 { return float64(len(s.agents)) })
	registerChainMetrics(lockedRegistrar{&s.mu, reg}, m)
	return s
}

// registerChainMetrics registers the per-tier and per-boundary series
// of a chain machine — the tier-labelled generalization of
// registerMachineMetrics' fast/slow pairs. Tier labels carry the chain
// tier names (e.g. "DRAM", "CXL", "PM"); artmem_tier_index orders them
// for dashboards that cannot assume name semantics.
func registerChainMetrics(l lockedRegistrar, m memsim.ChainEnv) {
	for t := 0; t < m.Tiers(); t++ {
		t := memsim.TierID(t)
		lbl := telemetry.L("tier", m.TierName(t))
		l.reg.GaugeFunc("artmem_tier_index",
			"Position of the tier in the chain (0 = fastest); orders tier-labelled series.",
			func() float64 { return float64(t) }, lbl)
		l.gauge("artmem_tier_pages",
			"Pages currently resident per tier.",
			func() float64 { return float64(m.UsedPages(t)) }, lbl)
		l.gauge("artmem_tier_capacity_pages",
			"Tier capacity in pages.",
			func() float64 { return float64(m.CapacityPages(t)) }, lbl)
		l.gauge("artmem_tier_shadow_pages",
			"Reclaimable shadow frames held per tier (non-exclusive mode).",
			func() float64 { return float64(m.ShadowPages(t)) }, lbl)
		l.counter("artmem_tier_accesses_total",
			"Cache-missing accesses served per tier.",
			func() uint64 { return m.TierAccesses(t) }, lbl)
	}
	for b := 0; b < m.NumBoundaries(); b++ {
		b := b
		lbl := telemetry.L("boundary",
			fmt.Sprintf("%s|%s", m.TierName(memsim.TierID(b)), m.TierName(memsim.TierID(b+1))))
		l.counter("artmem_boundary_promotions_total",
			"Promotions across each tier boundary (into the upper tier).",
			func() uint64 { return m.BoundaryStatsAt(b).Promotions }, lbl)
		l.counter("artmem_boundary_demotions_total",
			"Demotions across each tier boundary (into the lower tier).",
			func() uint64 { return m.BoundaryStatsAt(b).Demotions }, lbl)
		l.counter("artmem_boundary_shadow_discards_total",
			"Demotions completed as free discards onto a clean shadow copy.",
			func() uint64 { return m.BoundaryStatsAt(b).ShadowDiscards }, lbl)
	}
	l.counter("artmem_shadow_invalidates_total",
		"Shadow copies invalidated by writes to the promoted page.",
		func() uint64 { return m.Counters().ShadowInvalidates })
	l.counter("artmem_shadow_reclaims_total",
		"Shadow frames reclaimed under capacity pressure.",
		func() uint64 { return m.Counters().ShadowReclaims })
	l.counter("artmem_cache_hits_total",
		"Accesses absorbed by the CPU cache model.",
		func() uint64 { return m.Counters().CacheHits })
	l.counter("artmem_migrations_total",
		"Pages moved between tiers.",
		func() uint64 { return m.Counters().Migrations })
	l.counter("artmem_promotions_total",
		"Page moves toward a faster tier.",
		func() uint64 { return m.Counters().Promotions })
	l.counter("artmem_demotions_total",
		"Page moves toward a slower tier.",
		func() uint64 { return m.Counters().Demotions })
	l.counter("artmem_migrated_bytes_total",
		"Total bytes moved between tiers.",
		func() uint64 { return m.Counters().MigratedBytes })
	l.counter("artmem_migration_failures_total",
		"MovePage attempts that failed transiently (ErrMigrationBusy).",
		func() uint64 { return m.Counters().MigrationFailures })
	l.counter("artmem_numa_faults_total",
		"NUMA-hint faults taken.",
		func() uint64 { return m.Counters().Faults })
	l.gauge("artmem_virtual_clock_ns",
		"The machine's virtual clock.",
		func() float64 { return float64(m.Now()) })
	l.gauge("artmem_background_cpu_ns",
		"Virtual CPU time consumed by background work (sampling, RL, migration).",
		func() float64 { return m.BackgroundNs() })
	l.reg.HistogramFunc("artmem_access_latency_ns",
		"Distribution of per-access service latency (virtual ns).",
		func() telemetry.HistogramData {
			l.mu.Lock()
			defer l.mu.Unlock()
			return m.AccessLatencyData()
		})
}

// Machine returns the underlying chain machine. After Start, use it
// only through TieredSystem methods.
func (s *TieredSystem) Machine() *memsim.Machine { return s.m }

// Hub returns the boundary hub decomposing the chain.
func (s *TieredSystem) Hub() *memsim.BoundaryHub { return s.hub }

// NumBoundaries returns the number of boundary agents.
func (s *TieredSystem) NumBoundaries() int { return len(s.agents) }

// Agent returns boundary b's ArtMem agent. After Start, interrogate it
// only while the system is stopped.
func (s *TieredSystem) Agent(b int) *ArtMem { return s.agents[b] }

// AgentTelemetry returns boundary b's private telemetry set.
func (s *TieredSystem) AgentTelemetry(b int) *telemetry.Set { return s.agentTels[b] }

// Telemetry returns the runtime's aggregate telemetry set.
func (s *TieredSystem) Telemetry() *telemetry.Set { return s.tel }

// Injector returns the installed fault injector, or nil.
func (s *TieredSystem) Injector() *faultinject.Injector { return s.injector }

// ControlBusyNs returns cumulative wall nanoseconds the control
// threads held the system lock (System.ControlBusyNs's analogue).
func (s *TieredSystem) ControlBusyNs() int64 { return int64(s.ctlBusy.Value()) }

// SetDraining marks (or clears) the graceful-shutdown state.
func (s *TieredSystem) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports the graceful-shutdown state.
func (s *TieredSystem) Draining() bool { return s.draining.Load() }

// Access performs one application access under the system lock.
func (s *TieredSystem) Access(addr uint64, write bool) {
	s.mu.Lock()
	s.m.Access(addr, write)
	s.mu.Unlock()
}

// AccessBatch applies a batch of accesses under one lock acquisition.
func (s *TieredSystem) AccessBatch(addrs []uint64, writes []bool) {
	s.mu.Lock()
	for i, a := range addrs {
		s.m.Access(a, writes[i])
	}
	s.mu.Unlock()
}

// Counters returns a snapshot of the machine's counters.
func (s *TieredSystem) Counters() memsim.Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Counters()
}

// Now returns the machine's virtual time.
func (s *TieredSystem) Now() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Now()
}

// Health returns the runtime's liveness snapshot; Degraded reports
// whether ANY boundary's agent is in the heuristic fallback.
func (s *TieredSystem) Health() Health {
	s.mu.Lock()
	degraded := false
	for _, a := range s.agents {
		if a.Degraded() {
			degraded = true
			break
		}
	}
	s.mu.Unlock()
	return Health{
		SamplingBeats:   s.sampleBeats.Value(),
		MigrationBeats:  s.migrateBeats.Value(),
		SamplingStalls:  s.sampleStalls.Value(),
		MigrationStalls: s.migrateStalls.Value(),
		Panics:          s.panics.Value(),
		Degraded:        degraded,
	}
}

// Start launches the shared sampling, migration, and watchdog threads.
// No-op if already started.
func (s *TieredSystem) Start() {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.wg.Add(2)
	go s.thread(s.samplingInterval, s.sampleBeats, s.samplePass)
	go s.thread(s.migrationInterval, s.migrateBeats, s.migratePass)
	if s.watchdogInterval > 0 {
		s.wg.Add(1)
		go s.watchdogThread()
	}
}

// Stop halts the background threads and waits for them. Idempotent.
func (s *TieredSystem) Stop() {
	s.runMu.Lock()
	if !s.started {
		s.runMu.Unlock()
		return
	}
	s.started = false
	s.runMu.Unlock()
	close(s.stop)
	s.wg.Wait()
}

func (s *TieredSystem) thread(interval time.Duration, beat *telemetry.Counter, pass func()) {
	defer s.wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.runProtected(beat, pass)
		}
	}
}

// runProtected runs one control pass under the system lock, recovering
// panics (a crashing boundary tick must not take the shared thread
// down) and charging the pass's wall time to the busy counter.
func (s *TieredSystem) runProtected(beat *telemetry.Counter, pass func()) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Inc()
		}
	}()
	s.mu.Lock()
	t0 := time.Now()
	defer func() {
		s.ctlBusy.Add(uint64(time.Since(t0)))
		s.mu.Unlock()
	}()
	pass()
	beat.Inc()
}

// samplePass drains the shared PEBS stream into every boundary agent's
// recency structures, in ascending boundary order.
func (s *TieredSystem) samplePass() {
	for _, a := range s.agents {
		a.PumpSamples()
	}
}

// migratePass runs one decision period: refill the per-boundary
// migration budgets, then run every boundary agent's RL tick in
// ascending order — promotions into tier b happen before boundary b+1
// considers the pages left behind, so a hot page relays up the chain
// one boundary per period, deterministically.
func (s *TieredSystem) migratePass() {
	if s.budgets != nil {
		s.budgets.Reset()
	}
	now := s.m.Now()
	for _, a := range s.agents {
		a.Tick(now)
	}
}

// watchdogThread mirrors System's: a worker whose beat does not
// advance across an interval is counted as stalled.
func (s *TieredSystem) watchdogThread() {
	defer s.wg.Done()
	tick := time.NewTicker(s.watchdogInterval)
	defer tick.Stop()
	var lastSample, lastMigrate uint64
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			if cur := s.sampleBeats.Value(); cur == lastSample {
				s.sampleStalls.Inc()
			} else {
				lastSample = cur
			}
			if cur := s.migrateBeats.Value(); cur == lastMigrate {
				s.migrateStalls.Inc()
			} else {
				lastMigrate = cur
			}
		}
	}
}
