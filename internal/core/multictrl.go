package core

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// ControlHandler returns an http.Handler exposing the multi-tenant
// control plane:
//
//	GET /tenants       arbiter posture + per-tenant occupancy, quota,
//	                   traffic, and agent state as JSON (TenantsReport)
//	GET /stats         machine-wide counters as JSON (same shape a
//	                   single-tenant daemon serves, minus agent fields)
//	GET /metrics       the shared registry in Prometheus text format,
//	                   including the tenant-labelled series
//	GET /metrics.json  the shared registry as JSON
//	GET /trace         one tenant agent's decision trace as JSONL
//	                   (?tenant= selects the tenant, default 0; ?n= caps)
//	GET /healthz       ok/degraded/draining liveness for balancers
//	                   (JSON; draining answers 503)
//
// A single-tenant System's handler serves no /tenants route — clients
// (cmd/artmon) treat a 404 there as "not a multi-tenant daemon" and
// degrade gracefully.
func (s *MultiSystem) ControlHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", healthzHandler(s))
	mux.HandleFunc("GET /tenants", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.TenantsReport())
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		c := s.m.Counters()
		now := s.m.Now()
		active := s.plane.ActiveTenants()
		lc := s.plane.Stats()
		s.mu.Unlock()
		payload := struct {
			VirtualNs        int64   `json:"virtual_ns"`
			FastAccesses     uint64  `json:"fast_accesses"`
			SlowAccesses     uint64  `json:"slow_accesses"`
			CacheHits        uint64  `json:"cache_hits"`
			DRAMRatio        float64 `json:"dram_ratio"`
			Migrations       uint64  `json:"migrations"`
			Promotions       uint64  `json:"promotions"`
			Demotions        uint64  `json:"demotions"`
			MigratedBytes    uint64  `json:"migrated_bytes"`
			ActiveTenants    int     `json:"active_tenants"`
			Registrations    uint64  `json:"registrations"`
			Deregistrations  uint64  `json:"deregistrations"`
			Crashes          uint64  `json:"crashes"`
			ReclaimRollbacks uint64  `json:"reclaim_rollbacks"`
			Faults           any     `json:"faults,omitempty"`
		}{
			VirtualNs:        now,
			FastAccesses:     c.FastAccesses,
			SlowAccesses:     c.SlowAccesses,
			CacheHits:        c.CacheHits,
			DRAMRatio:        c.DRAMRatio(),
			Migrations:       c.Migrations,
			Promotions:       c.Promotions,
			Demotions:        c.Demotions,
			MigratedBytes:    c.MigratedBytes,
			ActiveTenants:    active,
			Registrations:    lc.Registrations,
			Deregistrations:  lc.Deregistrations,
			Crashes:          lc.Crashes,
			ReclaimRollbacks: lc.ReclaimRollbacks,
		}
		if s.injector != nil {
			st := s.injector.Stats()
			payload.Faults = &st
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(payload)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// The registry's pull closures lock s.mu themselves; this handler
		// must not hold it (see internal/core/telemetry.go).
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.tel.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.tel.Registry.Snapshot())
	})
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, r *http.Request) {
		tenant := 0
		if q := r.URL.Query().Get("tenant"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 || v >= len(s.agents) {
				http.Error(w, "bad tenant", http.StatusBadRequest)
				return
			}
			tenant = v
		}
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		s.mu.Lock()
		a := s.agents[tenant]
		s.mu.Unlock()
		if a == nil {
			http.Error(w, "tenant slot has no agent", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		a.Telemetry().Trace.WriteJSONL(w, n)
	})
	return mux
}
