package core

import (
	"fmt"

	"artmem/internal/rl"
	"artmem/internal/telemetry"
	"artmem/internal/tenancy"
)

// agentCheckpoint is a gracefully departed tenant's learned policy: deep
// copies of its two Q-tables, keyed by tenant name in
// MultiSystem.checkpoints. A tenant re-registering under the same name
// warm-starts from its checkpoint (the paper's §6.3.6 transfer setting:
// a trained table reused on a new run) instead of relearning from the
// uniform prior.
type agentCheckpoint struct {
	mig *rl.Table
	thr *rl.Table
}

// registerLocked admits one tenant: plane slot, fresh agent with a
// private telemetry set, warm-started from a same-name checkpoint when
// the table shapes still match. Caller holds s.mu (or is inside
// NewMultiSystem, before the threads exist).
func (s *MultiSystem) registerLocked(t TenantConfig) (int, error) {
	slot, err := s.plane.Register(tenancy.Tenant{Name: t.Name, Weight: t.Weight, Class: t.Class})
	if err != nil {
		return -1, err
	}
	agent := New(t.Policy)
	if ck, ok := s.checkpoints[s.plane.Tenant(slot).Name]; ok {
		// Warm-start only when the re-registered policy produces the same
		// table geometry; a reconfigured tenant starts cold rather than
		// panicking on a dimension mismatch.
		if agent.cfg.PretrainedMig == nil && ck.mig != nil &&
			ck.mig.Config().States == agent.numStates() &&
			ck.mig.Config().Actions == len(agent.cfg.MigrationPages) {
			agent.cfg.PretrainedMig = ck.mig
		}
		if agent.cfg.PretrainedThr == nil && ck.thr != nil &&
			ck.thr.Config().States == agent.numStates() &&
			ck.thr.Config().Actions == len(agent.cfg.ThresholdDeltas) {
			agent.cfg.PretrainedThr = ck.thr
		}
	}
	agent.SetTelemetry(&telemetry.Set{
		Registry: telemetry.NewRegistry(),
		Trace:    telemetry.NewTrace(s.traceCapacity),
	})
	agent.AttachEnv(s.plane.View(slot))
	s.agents[slot] = agent
	s.policies[slot] = t.Policy
	return slot, nil
}

// RegisterTenant admits a tenant at runtime, returning its slot id. The
// plane's admission control applies: a full plane fails with
// tenancy.ErrPlaneFull and a spent per-period arrival budget with
// tenancy.ErrRegistrationThrottled (retry next period). Safe to call
// concurrently with a started MultiSystem.
func (s *MultiSystem) RegisterTenant(t TenantConfig) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.registerLocked(t)
}

// DeregisterTenant retires the tenant in `slot` gracefully: its learned
// Q-tables are checkpointed under its name (a later same-name
// registration warm-starts from them), its agent is detached, and its
// pages are reclaimed in one transaction — freed when handoffTo < 0,
// recharged to the tenant in slot handoffTo otherwise. An interrupted
// reclamation returns tenancy.ErrReclaimInterrupted with the slot left
// draining (agent already detached); the migration thread retries each
// period, or call DeregisterTenant again.
func (s *MultiSystem) DeregisterTenant(slot, handoffTo int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deregisterLocked(slot, handoffTo, false)
}

// CrashTenant force-deregisters the tenant in `slot`, as a kill signal
// would: no checkpoint is taken (the in-memory policy state dies with
// the tenant), but the reclamation transaction is the same — pages are
// drained or handed off with rollback on fault.
func (s *MultiSystem) CrashTenant(slot, handoffTo int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deregisterLocked(slot, handoffTo, true)
}

func (s *MultiSystem) deregisterLocked(slot, handoffTo int, crash bool) error {
	if slot < 0 || slot >= len(s.agents) {
		return fmt.Errorf("core: no tenant slot %d", slot)
	}
	if a := s.agents[slot]; a != nil {
		if !crash && a.qMig != nil {
			s.checkpoints[s.plane.Tenant(slot).Name] = agentCheckpoint{
				mig: a.qMig.Clone(),
				thr: a.qThr.Clone(),
			}
		}
		s.agents[slot] = nil
		s.policies[slot] = Config{}
	}
	if crash {
		return s.plane.Crash(slot, handoffTo)
	}
	return s.plane.Deregister(slot, handoffTo)
}
