package core

import (
	"testing"
	"time"

	"artmem/internal/memsim"
)

func testShardedConfig(shards int) ShardedSystemConfig {
	mcfg := memsim.DefaultConfig(64*64*1024, 16*64*1024, 64*1024)
	mcfg.CacheLines = 0
	return ShardedSystemConfig{
		Machine:           mcfg,
		Shards:            shards,
		Policy:            Config{SamplePeriod: 1},
		SamplingInterval:  500 * time.Microsecond,
		MigrationInterval: time.Millisecond,
	}
}

func TestShardedSystemStartStopIdempotent(t *testing.T) {
	s := NewShardedSystem(testShardedConfig(4))
	s.Start()
	s.Start() // no-op
	s.Stop()
	s.Stop() // no-op
	s = NewShardedSystem(testShardedConfig(4))
	s.Stop() // stop without start must not hang
}

func TestShardedSystemAccessAndCounters(t *testing.T) {
	s := NewShardedSystem(testShardedConfig(4))
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", s.NumShards())
	}
	for i := 0; i < 1000; i++ {
		s.Access(uint64(i*64)%uint64(64*64*1024), i%4 == 0)
	}
	c := s.Counters()
	if c.FastAccesses+c.SlowAccesses != 1000 {
		t.Errorf("accesses = %d, want 1000", c.FastAccesses+c.SlowAccesses)
	}
	if s.Now() <= 0 {
		t.Errorf("virtual time did not advance")
	}
	if h := s.Health(); h.Degraded {
		t.Errorf("fresh system reports degraded")
	}
}

func TestShardedSystemAllocFreeRange(t *testing.T) {
	s := NewShardedSystem(testShardedConfig(4))
	ps := uint64(s.Machine().PageSize())
	if got := s.AllocRange(3*ps, 10*ps); got != 10 {
		t.Fatalf("AllocRange touched %d pages, want 10", got)
	}
	if got := s.FreeRange(3*ps, 10*ps); got != 10 {
		t.Fatalf("FreeRange freed %d pages, want 10", got)
	}
	if used := s.Machine().UsedPages(memsim.Fast) + s.Machine().UsedPages(memsim.Slow); used != 0 {
		t.Errorf("pages still resident after free: %d", used)
	}
	if got := s.AllocRange(0, 0); got != 0 {
		t.Errorf("zero-size alloc touched %d", got)
	}
}

// TestShardedSystemRebalance drives all demand onto one shard until its
// fast tier is exhausted, then checks that a migration pass pulls free
// fast-tier capacity from the idle shards toward it — the cross-shard
// analogue of promotion — while the capacity-conservation invariant
// holds.
func TestShardedSystemRebalance(t *testing.T) {
	s := NewShardedSystem(testShardedConfig(4))
	sm := s.Machine()
	ps := uint64(sm.PageSize())
	// Pages p with p&3 == 0 all live on shard 0. Touch every one of
	// shard 0's 16 pages: 4 fill its fast tier, 12 land in slow, and
	// the repeated slow hits become its demand signal.
	for rep := 0; rep < 3; rep++ {
		for p := uint64(0); p < 64; p += 4 {
			s.Access(p*ps, false)
		}
	}
	var fastBefore, freeBefore int
	sm.RunShard(0, func(m *memsim.Machine) {
		fastBefore = m.CapacityPages(memsim.Fast)
		freeBefore = m.FreePages(memsim.Fast)
	})
	if freeBefore != 0 {
		t.Fatalf("shard 0 fast tier not exhausted: %d free", freeBefore)
	}
	s.migratePass()
	var fastAfter int
	sm.RunShard(0, func(m *memsim.Machine) { fastAfter = m.CapacityPages(memsim.Fast) })
	if fastAfter <= fastBefore {
		t.Errorf("rebalance did not grow shard 0 fast capacity: %d -> %d", fastBefore, fastAfter)
	}
	if s.transfers.Value() == 0 {
		t.Errorf("no capacity transfers recorded")
	}
	sm.Quiesce(func() {
		if err := sm.CheckInvariants(); err != nil {
			t.Fatalf("invariants after rebalance: %v", err)
		}
	})
	// Idle shards must keep their one-page donor slack.
	for i := 1; i < 4; i++ {
		var free int
		sm.RunShard(i, func(m *memsim.Machine) { free = m.FreePages(memsim.Fast) })
		if free < 1 {
			t.Errorf("donor shard %d stripped bare: %d free", i, free)
		}
	}
}

// TestShardedSystemBackground runs the shared threads for real and
// checks that both beat, the per-shard agents pump samples, and the
// busy counter observes the passes.
func TestShardedSystemBackground(t *testing.T) {
	s := NewShardedSystem(testShardedConfig(2))
	s.Start()
	defer s.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for i := 0; i < 200; i++ {
			s.Access(uint64(i*64)%uint64(64*64*1024), false)
		}
		h := s.Health()
		if h.SamplingBeats > 2 && h.MigrationBeats > 1 {
			if s.ControlBusyNs() <= 0 {
				t.Errorf("control passes ran but busy counter is zero")
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("background threads did not beat: %+v", s.Health())
}

// TestShardedSystemSamplePass pins that a manual sampling pass drains
// every shard's ring without disturbing counters.
func TestShardedSystemSamplePass(t *testing.T) {
	s := NewShardedSystem(testShardedConfig(4))
	for i := 0; i < 500; i++ {
		s.Access(uint64(i*64)%uint64(64*64*1024), false)
	}
	before := s.Counters()
	s.samplePass()
	after := s.Counters()
	if before.FastAccesses != after.FastAccesses || before.SlowAccesses != after.SlowAccesses {
		t.Errorf("sampling pass changed access counters: %+v vs %+v", before, after)
	}
}
