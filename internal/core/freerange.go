package core

import (
	"artmem/internal/memsim"
	"artmem/internal/tenancy"
)

// Range primitives for the serving frontend (internal/serve): a remote
// client's alloc record maps to first-touch writes across the range and
// its free record to FreeRange. Both operate under the system lock and
// are control-plane-rate operations, not access-hot-path ones.

// freeRange unallocates every currently allocated page of
// [addr, addr+size) on m, skipping pages not owned by `owner` (pass
// memsim.DefaultTenant on a single-tenant machine, where OwnerOf always
// reports DefaultTenant). Addresses wrap like Access does, and the page
// walk is capped at one full pass of the machine so a huge size cannot
// spin. Returns the number of pages freed.
func freeRange(m *memsim.Machine, owner memsim.TenantID, addr, size uint64) int {
	if size == 0 {
		return 0
	}
	ps := uint64(m.PageSize())
	first := addr / ps
	last := (addr + size - 1) / ps
	n := last - first + 1
	if n > uint64(m.NumPages()) {
		n = uint64(m.NumPages())
	}
	freed := 0
	for i := uint64(0); i < n; i++ {
		pid := m.PageOf((first + i) * ps)
		if !m.Allocated(pid) || m.OwnerOf(pid) != owner {
			continue
		}
		if m.FreePage(pid) == nil {
			freed++
		}
	}
	return freed
}

// touchRange write-touches the first byte of every page of
// [addr, addr+size) — the serving layer's alloc: untouched pages are
// first-touch allocated by the machine, already-resident ones just see
// one write. The walk is capped at one full pass of the machine.
// Returns the number of pages touched.
func touchRange(m *memsim.Machine, addr, size uint64) int {
	if size == 0 {
		return 0
	}
	ps := uint64(m.PageSize())
	first := addr / ps
	last := (addr + size - 1) / ps
	n := last - first + 1
	if n > uint64(m.NumPages()) {
		n = uint64(m.NumPages())
	}
	for i := uint64(0); i < n; i++ {
		m.Access((first+i)*ps, true)
	}
	return int(n)
}

// FreeRange unallocates the pages of [addr, addr+size) under the system
// lock and returns how many were freed. Freed pages simply vanish from
// the policy's candidate sets — migration already skips unallocated
// pages — and the address range re-allocates on next touch.
func (s *System) FreeRange(addr, size uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return freeRange(s.m, memsim.DefaultTenant, addr, size)
}

// AllocRange first-touch allocates the pages of [addr, addr+size) by
// write-touching each one under the system lock; returns the number of
// pages touched.
func (s *System) AllocRange(addr, size uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return touchRange(s.m, addr, size)
}

// FreeRange unallocates tenant `tenant`'s pages of [addr, addr+size)
// under the system lock, skipping pages owned by other tenants (a
// client cannot free memory it does not own). Returns the number of
// pages freed.
func (s *MultiSystem) FreeRange(tenant int, addr, size uint64) int {
	if tenant < 0 || tenant >= len(s.agents) {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return freeRange(s.m, memsim.TenantID(tenant), addr, size)
}

// AllocRange first-touch allocates the pages of [addr, addr+size) on
// behalf of tenant `tenant` by write-touching each one under the system
// lock; returns the number of pages touched.
func (s *MultiSystem) AllocRange(tenant int, addr, size uint64) int {
	if tenant < 0 || tenant >= len(s.agents) {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.SetCurrentTenant(memsim.TenantID(tenant))
	return touchRange(s.m, addr, size)
}

// TenantState returns slot i's lifecycle state under the system lock —
// the serving frontend's admission check (only Active slots accept
// traffic). Out-of-range slots report StateEmpty.
func (s *MultiSystem) TenantState(i int) tenancy.TenantState {
	if i < 0 || i >= len(s.agents) {
		return tenancy.StateEmpty
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plane.State(i)
}
