package core

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http/httptest"
	"regexp"
	"sort"
	"strings"
	"testing"

	"artmem/internal/telemetry"
)

// tickOnce drives one decision period with fresh access activity so the
// sampling window is never empty (keeps the agent out of degraded mode).
func tickOnce(s *System) {
	for p := uint64(0); p < 32; p++ {
		s.Access(p*64*1024, false)
	}
	s.mu.Lock()
	s.pol.Tick(s.m.Now())
	s.mu.Unlock()
}

// TestStatsSchemaPinned pins the exact key set of the /stats JSON object.
// The endpoint predates the telemetry registry; external scrapers may
// depend on every one of these fields, so a key disappearing (or an
// accidental rename while moving counters onto the registry) must fail
// loudly. Adding new keys is a deliberate act: extend this list.
func TestStatsSchemaPinned(t *testing.T) {
	s := NewSystem(testSystemConfig())
	tickOnce(s)
	srv := httptest.NewServer(s.ControlHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"virtual_ns", "fast_accesses", "slow_accesses", "cache_hits",
		"dram_ratio", "migrations", "promotions", "demotions",
		"migrated_bytes", "degraded", "degraded_ticks", "degraded_entries",
		"migration_failures", "migration_retries", "migration_skips",
		"migration_rollbacks", "tier_full_stops", "sample_drops",
		"watchdog_stalls", "panics",
	}
	keys := make([]string, 0, len(got))
	for k := range got {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sort.Strings(want)
	if strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Errorf("/stats schema drifted:\n got  %v\n want %v", keys, want)
	}
}

var promLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[-+]?(Inf|[0-9].*)))$`)

func TestMetricsEndpointPrometheusFormat(t *testing.T) {
	s := NewSystem(testSystemConfig())
	for i := 0; i < 5; i++ {
		tickOnce(s)
	}
	srv := httptest.NewServer(s.ControlHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
	// The acceptance set from the issue: tier occupancy, migration
	// counters, the access-latency histogram, RL decision counters —
	// plus one representative per instrumented layer.
	for _, want := range []string{
		`artmem_tier_pages{tier="fast"}`,
		`artmem_tier_pages{tier="slow"}`,
		`artmem_tier_capacity_pages{tier="fast"}`,
		"artmem_migrations_total",
		"artmem_promotions_total",
		"artmem_demotions_total",
		`artmem_access_latency_ns_bucket{le="+Inf"}`,
		"artmem_access_latency_ns_sum",
		"artmem_access_latency_ns_count",
		"artmem_decisions_total 5",
		`artmem_rl_updates_total{table="migration"}`,
		`artmem_rl_explorations_total{table="threshold"}`,
		"artmem_pebs_samples_total",
		`artmem_lru_pages{list="fast_active"}`,
		"artmem_threshold",
		"artmem_sampling_beats_total",
		"artmem_worker_panics_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsLatencyHistogramConsistent checks the pull-based access
// latency histogram against the machine's ground-truth counters: every
// cache-missing access shows up in the +Inf bucket.
func TestMetricsLatencyHistogramConsistent(t *testing.T) {
	s := NewSystem(testSystemConfig())
	for i := 0; i < 3; i++ {
		tickOnce(s)
	}
	data := func() telemetry.HistogramData {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.m.AccessLatencyData()
	}()
	c := s.Counters()
	total := c.FastAccesses + c.SlowAccesses + c.CacheHits
	if len(data.Counts) == 0 {
		t.Fatal("no histogram buckets")
	}
	if got := data.Counts[len(data.Counts)-1]; got != total {
		t.Errorf("latency histogram count = %d, want %d accesses", got, total)
	}
	if data.Sum <= 0 {
		t.Errorf("latency histogram sum = %g", data.Sum)
	}
}

func TestTraceEndpointJSONL(t *testing.T) {
	s := NewSystem(testSystemConfig())
	for i := 0; i < 4; i++ {
		tickOnce(s)
	}
	srv := httptest.NewServer(s.ControlHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var events []telemetry.Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev telemetry.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v (%q)", len(events)+1, err, sc.Text())
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	var lastSeq uint64
	for i, ev := range events {
		if ev.Seq <= lastSeq {
			t.Errorf("event %d: seq %d not increasing (prev %d)", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Kind == "" {
			t.Errorf("event %d: empty kind", i)
		}
	}

	// ?n= caps the drain.
	resp2, err := srv.Client().Get(srv.URL + "/trace?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	if n := len(strings.Split(strings.TrimRight(string(body), "\n"), "\n")); n != 2 {
		t.Errorf("/trace?n=2 returned %d lines", n)
	}
	resp3, err := srv.Client().Get(srv.URL + "/trace?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != 400 {
		t.Errorf("/trace?n=bogus status = %d", resp3.StatusCode)
	}
}

// TestDecisionTraceOnePerPeriod is the issue's acceptance test: a
// deterministic run produces exactly one decision event per RL period,
// and each event's recorded action (quota, threshold) matches the
// agent's state after that period.
func TestDecisionTraceOnePerPeriod(t *testing.T) {
	const periods = 20
	s := NewSystem(testSystemConfig())
	pol := s.Policy()

	type expect struct {
		quota     int
		threshold uint32
		state     int
	}
	var exp []expect
	for i := 0; i < periods; i++ {
		tickOnce(s)
		s.mu.Lock()
		exp = append(exp, expect{
			quota:     pol.cfg.MigrationPages[pol.actMig],
			threshold: pol.threshold,
			state:     pol.state,
		})
		s.mu.Unlock()
	}

	var decisions []telemetry.Event
	for _, ev := range s.Telemetry().Trace.Events(0) {
		if ev.Kind == telemetry.KindDecision {
			decisions = append(decisions, ev)
		}
	}
	if len(decisions) != periods {
		t.Fatalf("decision events = %d, want one per period (%d)", len(decisions), periods)
	}
	if got := pol.Decisions(); got != periods {
		t.Errorf("Decisions() = %d, want %d", got, periods)
	}
	prevTime := int64(-1)
	for i, ev := range decisions {
		if ev.Quota != exp[i].quota {
			t.Errorf("period %d: trace quota %d, agent chose %d", i, ev.Quota, exp[i].quota)
		}
		if ev.Threshold != exp[i].threshold {
			t.Errorf("period %d: trace threshold %d, agent has %d", i, ev.Threshold, exp[i].threshold)
		}
		if ev.State != exp[i].state {
			t.Errorf("period %d: trace state %d, agent observed %d", i, ev.State, exp[i].state)
		}
		if ev.TimeNs < prevTime {
			t.Errorf("period %d: virtual time went backwards (%d < %d)", i, ev.TimeNs, prevTime)
		}
		prevTime = ev.TimeNs
		if ev.WinFast+ev.WinSlow == 0 {
			t.Errorf("period %d: empty sampling window recorded despite activity", i)
		}
	}
}

// TestSharedTelemetrySetRejected documents that a caller-provided set is
// used as-is (the daemon passes one so it can add its own metrics).
func TestSystemUsesProvidedTelemetrySet(t *testing.T) {
	set := telemetry.NewSet()
	cfg := testSystemConfig()
	cfg.Telemetry = set
	s := NewSystem(cfg)
	if s.Telemetry() != set {
		t.Fatal("System did not adopt the provided telemetry set")
	}
	if s.Policy().Telemetry() != set {
		t.Fatal("policy not wired to the provided telemetry set")
	}
}

// TestWatchdogHealthTransitions drives the extracted watchdog step
// directly: a healthy system accumulates no stalls, a stalled worker
// accumulates one stall per check, and recovery stops the accumulation
// while past stalls stay visible.
func TestWatchdogHealthTransitions(t *testing.T) {
	s := NewSystem(testSystemConfig())
	var w watchdogState

	// Healthy: both workers beat between checks.
	s.sampleBeats.Inc()
	s.migrateBeats.Inc()
	s.watchdogCheck(&w)
	h := s.Health()
	if h.SamplingStalls != 0 || h.MigrationStalls != 0 {
		t.Fatalf("healthy: stalls = %d/%d, want 0/0", h.SamplingStalls, h.MigrationStalls)
	}

	// Stalled: no beats across two checks.
	s.watchdogCheck(&w)
	s.watchdogCheck(&w)
	h = s.Health()
	if h.SamplingStalls != 2 || h.MigrationStalls != 2 {
		t.Fatalf("stalled: stalls = %d/%d, want 2/2", h.SamplingStalls, h.MigrationStalls)
	}

	// Recovered: the sampling worker beats again; the migration worker
	// stays stuck. Only the stuck one keeps accumulating.
	s.sampleBeats.Inc()
	s.watchdogCheck(&w)
	h = s.Health()
	if h.SamplingStalls != 2 {
		t.Errorf("recovered: sampling stalls = %d, want 2 (monotonic, no new)", h.SamplingStalls)
	}
	if h.MigrationStalls != 3 {
		t.Errorf("still stuck: migration stalls = %d, want 3", h.MigrationStalls)
	}

	// And a later healthy check adds nothing anywhere.
	s.sampleBeats.Inc()
	s.migrateBeats.Inc()
	s.watchdogCheck(&w)
	h = s.Health()
	if h.SamplingStalls != 2 || h.MigrationStalls != 3 {
		t.Errorf("final: stalls = %d/%d, want 2/3", h.SamplingStalls, h.MigrationStalls)
	}
}
