package core

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"artmem/internal/telemetry"
)

// pageTraceSystemConfig enables lifecycle tracing for every page so
// tests can reason about specific pages instead of hash-sampled ones.
func pageTraceSystemConfig() SystemConfig {
	cfg := testSystemConfig()
	cfg.PageTraceSampleRate = 1
	return cfg
}

// drivePromotions allocates the whole footprint, then hammers a band of
// slow-tier pages across several decision periods so the agent promotes
// them. Returns the system for inspection.
func drivePromotions(t *testing.T) *System {
	t.Helper()
	s := NewSystem(pageTraceSystemConfig())
	pageSize := uint64(s.Machine().PageSize())
	// First touch every page: the fast tier fills, the rest overflow.
	for p := uint64(0); p < uint64(s.Machine().NumPages()); p++ {
		s.Access(p*pageSize, false)
	}
	// Hammer a slow-tier band until promotions happen.
	for round := 0; round < 30; round++ {
		for rep := 0; rep < 8; rep++ {
			for p := uint64(20); p < 30; p++ {
				s.Access(p*pageSize, false)
			}
		}
		s.mu.Lock()
		s.pol.Tick(s.m.Now())
		s.mu.Unlock()
		if s.Counters().Promotions > 0 && round > 2 {
			break
		}
	}
	if s.Counters().Promotions == 0 {
		t.Fatal("workload produced no promotions; lifecycle test cannot run")
	}
	return s
}

// TestPageLifecycleReconstruction is the issue's acceptance test: a
// single sampled page's full lifecycle — allocation, PEBS samples, LRU
// transitions, the policy verdict with its reason, and the settled
// migration — is reconstructable from the journal, in order.
func TestPageLifecycleReconstruction(t *testing.T) {
	s := drivePromotions(t)
	pt := s.Telemetry().PageTrace

	// Find a page that settled a slow→fast promotion.
	var page uint64
	var found bool
	for _, e := range pt.Events(0) {
		if e.Kind == telemetry.PageKindMigration &&
			e.Outcome == telemetry.OutcomeSettled && e.To == "fast" {
			page, found = e.Page, true
			break
		}
	}
	if !found {
		t.Fatal("no settled promotion in the journal")
	}

	tl := pt.PageEvents(page)
	if len(tl) < 4 {
		t.Fatalf("page %d timeline has %d events, want a full lifecycle: %+v", page, len(tl), tl)
	}
	var lastSeq uint64
	var lastTime int64 = -1
	kinds := map[string]int{}
	for i, e := range tl {
		if e.Page != page {
			t.Fatalf("timeline event %d belongs to page %d", i, e.Page)
		}
		if e.Seq <= lastSeq {
			t.Errorf("event %d: seq %d not increasing", i, e.Seq)
		}
		if e.TimeNs < lastTime {
			t.Errorf("event %d: virtual time went backwards (%d < %d)", i, e.TimeNs, lastTime)
		}
		lastSeq, lastTime = e.Seq, e.TimeNs
		kinds[e.Kind]++
	}
	// The lifecycle stages the workload must have exercised. (The alloc
	// event may have been ring-evicted only if the ring wrapped; the
	// default capacity comfortably holds this run.)
	for _, k := range []string{
		telemetry.PageKindAlloc, telemetry.PageKindSample,
		telemetry.PageKindLRU, telemetry.PageKindVerdict,
		telemetry.PageKindMigration,
	} {
		if kinds[k] == 0 {
			t.Errorf("page %d lifecycle missing %q events: %+v", page, k, tl)
		}
	}
	if tl[0].Kind != telemetry.PageKindAlloc {
		t.Errorf("lifecycle starts with %q, want alloc", tl[0].Kind)
	}
	// The verdict that qualified the page must precede the settled
	// migration and carry the hotness comparison behind it.
	verdictAt, settledAt := -1, -1
	for i, e := range tl {
		if e.Kind == telemetry.PageKindVerdict && e.Outcome == telemetry.OutcomeQualified && verdictAt < 0 {
			verdictAt = i
			if e.Count < e.Threshold {
				t.Errorf("qualified verdict with count %d < threshold %d", e.Count, e.Threshold)
			}
			if !strings.Contains(e.Reason, "threshold") {
				t.Errorf("verdict reason %q does not explain the comparison", e.Reason)
			}
		}
		if e.Kind == telemetry.PageKindMigration && e.Outcome == telemetry.OutcomeSettled &&
			e.To == "fast" && settledAt < 0 {
			settledAt = i
			if e.From != "slow" {
				t.Errorf("promotion from %q, want slow", e.From)
			}
		}
	}
	if verdictAt < 0 || settledAt < 0 || verdictAt > settledAt {
		t.Errorf("verdict (%d) does not precede settled migration (%d)", verdictAt, settledAt)
	}
}

// TestPageTraceEndpointSchemaPinned pins the exact key set of every
// /pagetrace JSONL record. The schema is fixed (no omitted keys) so
// external consumers — artrace pagetrace among them — can rely on it;
// changing it is a deliberate act: extend this list.
func TestPageTraceEndpointSchemaPinned(t *testing.T) {
	s := drivePromotions(t)
	srv := httptest.NewServer(s.ControlHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/pagetrace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	want := []string{
		"seq", "time_ns", "page", "kind", "tier", "from", "to",
		"count", "threshold", "outcome", "reason",
	}
	sort.Strings(want)
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		keys := make([]string, 0, len(obj))
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if strings.Join(keys, ",") != strings.Join(want, ",") {
			t.Fatalf("/pagetrace schema drifted on line %d:\n got  %v\n want %v", lines, keys, want)
		}
	}
	if lines == 0 {
		t.Fatal("empty /pagetrace")
	}
}

func TestPageTraceEndpointFilterAndErrors(t *testing.T) {
	s := drivePromotions(t)
	srv := httptest.NewServer(s.ControlHandler())
	defer srv.Close()

	// Pick any journaled page and filter to it.
	page := s.Telemetry().PageTrace.Events(1)[0].Page
	resp, err := srv.Client().Get(srv.URL + "/pagetrace?page=" + jsonNum(page))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	n := 0
	for sc.Scan() {
		var e telemetry.PageEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		if e.Page != page {
			t.Errorf("filtered response contains page %d, want only %d", e.Page, page)
		}
		n++
	}
	if n == 0 {
		t.Error("page filter returned nothing")
	}

	for _, q := range []string{"?n=bogus", "?n=-1", "?page=bogus", "?page=-2"} {
		resp, err := srv.Client().Get(srv.URL + "/pagetrace" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("/pagetrace%s status = %d, want 400", q, resp.StatusCode)
		}
	}
}

func jsonNum(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestPageTraceDisabledByDefault: without a sample rate the endpoint
// 404s and the hooks stay unwired.
func TestPageTraceDisabledByDefault(t *testing.T) {
	s := NewSystem(testSystemConfig())
	if s.Telemetry().PageTrace != nil {
		t.Fatal("page trace enabled without opting in")
	}
	for i := 0; i < 3; i++ {
		tickOnce(s)
	}
	srv := httptest.NewServer(s.ControlHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/pagetrace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/pagetrace status = %d, want 404 when disabled", resp.StatusCode)
	}
}

// TestQTableEndpointSchemaPinned pins the /qtable JSON schema: the
// report's top-level keys and the per-table snapshot keys.
func TestQTableEndpointSchemaPinned(t *testing.T) {
	s := NewSystem(testSystemConfig())
	for i := 0; i < 5; i++ {
		tickOnce(s)
	}
	srv := httptest.NewServer(s.ControlHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/qtable")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(body, &obj); err != nil {
		t.Fatal(err)
	}
	wantTop := []string{
		"policy", "k", "states", "no_sample_state", "current_state",
		"current_threshold", "min_threshold", "beta", "degraded",
		"decisions", "migration_pages", "threshold_deltas",
		"migration", "threshold",
	}
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sort.Strings(wantTop)
	if strings.Join(keys, ",") != strings.Join(wantTop, ",") {
		t.Errorf("/qtable schema drifted:\n got  %v\n want %v", keys, wantTop)
	}

	wantSnap := []string{
		"states", "actions", "algorithm", "alpha", "gamma", "epsilon",
		"updates", "q", "visits", "explorations", "greedy",
		"mean_reward", "reward_count",
	}
	sort.Strings(wantSnap)
	for _, table := range []string{"migration", "threshold"} {
		var snap map[string]json.RawMessage
		if err := json.Unmarshal(obj[table], &snap); err != nil {
			t.Fatalf("%s table: %v", table, err)
		}
		keys := make([]string, 0, len(snap))
		for k := range snap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if strings.Join(keys, ",") != strings.Join(wantSnap, ",") {
			t.Errorf("/qtable %s snapshot schema drifted:\n got  %v\n want %v", table, keys, wantSnap)
		}
	}

	// Decode the full report and cross-check it against the live agent.
	var rep QTableReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.States != rep.K+2 || rep.NoSampleState != rep.K+1 {
		t.Errorf("state layout: states=%d no_sample=%d k=%d", rep.States, rep.NoSampleState, rep.K)
	}
	if rep.Decisions != 5 {
		t.Errorf("decisions = %d, want 5", rep.Decisions)
	}
	if len(rep.Migration.Q) != rep.States || len(rep.Migration.Q[0]) != len(rep.MigrationPages) {
		t.Errorf("migration table %dx%d does not match %d states x %d actions",
			len(rep.Migration.Q), len(rep.Migration.Q[0]), rep.States, len(rep.MigrationPages))
	}
	if len(rep.ThresholdTable.Q[0]) != len(rep.ThresholdDeltas) {
		t.Errorf("threshold table has %d actions, want %d",
			len(rep.ThresholdTable.Q[0]), len(rep.ThresholdDeltas))
	}
	var visits uint64
	for _, v := range rep.Migration.Visits {
		visits += v
	}
	if visits == 0 {
		t.Error("no state visits recorded after 5 decision periods")
	}
}

// TestTraceEventSchemaPinned pins the /trace decision-record key set —
// the JSONL contract artrace and artmon consume.
func TestTraceEventSchemaPinned(t *testing.T) {
	s := NewSystem(testSystemConfig())
	tickOnce(s)
	srv := httptest.NewServer(s.ControlHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/trace?n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var obj map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&obj); err != nil {
		t.Fatal(err)
	}
	// "detail" is omitempty and absent on decision events.
	want := []string{
		"seq", "time_ns", "kind", "state", "reward", "quota",
		"threshold_delta", "threshold", "attempted", "promoted",
		"failed", "rolled_back", "win_fast", "win_slow", "degraded",
	}
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sort.Strings(want)
	if strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Errorf("/trace schema drifted:\n got  %v\n want %v", keys, want)
	}
}
