package core

import (
	"sync"
	"sync/atomic"
	"time"

	"artmem/internal/faultinject"
	"artmem/internal/memsim"
	"artmem/internal/telemetry"
	"artmem/internal/tenancy"
)

// MultiSystem is the multi-tenant online runtime: one machine, one
// tenancy control plane, and one ArtMem agent per tenant, all driven by
// the same shared background threads a single-tenant System runs. The
// kernel analogue is the paper's per-memcg deployment — each memory
// cgroup gets its own hit-ratio state and Q-tables while ksampled and
// kmigrated remain global kernel threads; here each tenant's agent
// attaches to its tenancy.TenantView and the shared migration thread
// opens one arbiter control period, then ticks every agent under it,
// so all promotion traffic competes for the same per-period admission
// budgets.
//
// Each agent carries a private telemetry.Set (ArtMem metric names are
// fixed, so agents cannot share one registry); the MultiSystem's own
// shared set carries the machine-level series plus tenant-labelled
// aggregates and is what ControlHandler serves.
type MultiSystem struct {
	mu    sync.Mutex
	m     *memsim.Machine
	plane *tenancy.Plane
	// agents is indexed by plane slot; nil for empty or draining
	// slots. Tenants cycle through slots via RegisterTenant /
	// DeregisterTenant.
	agents []*ArtMem
	// policies remembers each occupied slot's policy config so reports
	// and restarts know what is running there.
	policies []Config
	// checkpoints preserves a gracefully departed tenant's learned
	// Q-tables, keyed by tenant name, so a re-registration warm-starts
	// instead of relearning from scratch. Crashes do not checkpoint —
	// a crashed tenant's in-memory state is lost, as in production.
	checkpoints map[string]agentCheckpoint

	injector *faultinject.Injector

	samplingInterval  time.Duration
	migrationInterval time.Duration
	watchdogInterval  time.Duration

	stop chan struct{}
	wg   sync.WaitGroup

	started bool

	tel           *telemetry.Set
	traceCapacity int

	// Liveness accounting, as in System: heartbeats advance once per
	// completed worker iteration across all tenants.
	sampleBeats   *telemetry.Counter
	migrateBeats  *telemetry.Counter
	sampleStalls  *telemetry.Counter
	migrateStalls *telemetry.Counter
	panics        *telemetry.Counter
	ctlBusy       *telemetry.Counter

	// draining is set by the daemon during graceful shutdown so
	// /healthz can advertise the state to load balancers.
	draining atomic.Bool
}

// TenantConfig describes one tenant of a MultiSystem.
type TenantConfig struct {
	// Name labels the tenant in telemetry and the /tenants endpoint;
	// "" uses "tenant<i>".
	Name string
	// Weight is the tenant's fast-tier and migration-bandwidth share;
	// 0 means 1.
	Weight int
	// Class is the tenant's SLO class: latency-SLO tenants preempt
	// batch promotion bandwidth under admission control.
	Class tenancy.SLOClass
	// Policy configures the tenant's ArtMem agent.
	Policy Config
}

// MultiSystemConfig parameterizes a multi-tenant runtime.
type MultiSystemConfig struct {
	// Machine configures the shared simulated tiered memory.
	Machine memsim.Config
	// Tenants configures the initial tenants. May be empty when
	// Capacity > 0 (tenants then arrive via RegisterTenant).
	Tenants []TenantConfig
	// Capacity fixes the tenant slot count — the maximum number of
	// concurrent tenants over the system's lifetime. 0 uses
	// len(Tenants) (a fixed-membership system).
	Capacity int
	// Arbiter configures fast-tier partitioning and migration admission
	// control (zero value: arbitration off, no admission control).
	Arbiter tenancy.ArbiterConfig
	// SamplingInterval, MigrationInterval, and WatchdogInterval mirror
	// SystemConfig: 0 uses 2ms, 20ms, and 1s respectively; a negative
	// WatchdogInterval disables the watchdog.
	SamplingInterval  time.Duration
	MigrationInterval time.Duration
	WatchdogInterval  time.Duration
	// Faults, when non-nil, installs a shared fault injector — injected
	// infrastructure chaos hits every tenant.
	Faults *faultinject.Config
	// Telemetry, when non-nil, is the shared registry + trace the
	// runtime instruments itself onto; nil creates a fresh set. The
	// per-tenant agents always get private sets.
	Telemetry *telemetry.Set
	// TraceCapacity bounds each tenant agent's decision-trace ring.
	// 0 uses telemetry.DefaultTraceCap.
	TraceCapacity int
}

// NewMultiSystem builds a multi-tenant online system. Call Start to
// launch the background threads and Stop to halt them.
func NewMultiSystem(cfg MultiSystemConfig) *MultiSystem {
	if len(cfg.Tenants) == 0 && cfg.Capacity == 0 {
		panic("core: MultiSystemConfig needs at least one tenant or a capacity")
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = len(cfg.Tenants)
	}
	if len(cfg.Tenants) > cfg.Capacity {
		panic("core: more initial tenants than capacity")
	}
	if cfg.SamplingInterval == 0 {
		cfg.SamplingInterval = 2 * time.Millisecond
	}
	if cfg.MigrationInterval == 0 {
		cfg.MigrationInterval = 20 * time.Millisecond
	}
	if cfg.WatchdogInterval == 0 {
		cfg.WatchdogInterval = time.Second
	}
	m := memsim.NewMachine(cfg.Machine)
	var inj *faultinject.Injector
	if cfg.Faults != nil {
		inj = faultinject.New(*cfg.Faults)
		m.SetFaultInjector(inj)
	}
	plane := tenancy.NewDynamicPlane(m, cfg.Capacity, cfg.Arbiter)
	tel := cfg.Telemetry
	if tel == nil {
		tel = &telemetry.Set{
			Registry: telemetry.NewRegistry(),
			Trace:    telemetry.NewTrace(cfg.TraceCapacity),
		}
	}
	s := &MultiSystem{
		m:                 m,
		plane:             plane,
		agents:            make([]*ArtMem, cfg.Capacity),
		policies:          make([]Config, cfg.Capacity),
		checkpoints:       make(map[string]agentCheckpoint),
		injector:          inj,
		samplingInterval:  cfg.SamplingInterval,
		migrationInterval: cfg.MigrationInterval,
		watchdogInterval:  cfg.WatchdogInterval,
		stop:              make(chan struct{}),
		tel:               tel,
		traceCapacity:     cfg.TraceCapacity,
	}
	for _, t := range cfg.Tenants {
		if _, err := s.registerLocked(t); err != nil {
			panic("core: initial tenant registration failed: " + err.Error())
		}
	}
	reg := tel.Registry
	s.sampleBeats = reg.Counter("artmem_sampling_beats_total",
		"Completed sampling-thread iterations (ksampled heartbeats).")
	s.migrateBeats = reg.Counter("artmem_migration_beats_total",
		"Completed migration-thread iterations (kmigrated heartbeats).")
	s.sampleStalls = reg.Counter("artmem_sampling_stalls_total",
		"Watchdog intervals in which the sampling thread made no progress.")
	s.migrateStalls = reg.Counter("artmem_migration_stalls_total",
		"Watchdog intervals in which the migration thread made no progress.")
	s.panics = reg.Counter("artmem_worker_panics_total",
		"Recovered panics in the worker threads.")
	s.ctlBusy = reg.Counter("artmem_control_busy_ns_total",
		"Wall nanoseconds the control loop held the plane lock (sampling drains, arbiter + migration passes) — the serve layer's migration-stall attribution source.")
	s.registerMultiMetrics()
	return s
}

// registerMultiMetrics instruments the shared registry: the machine
// series every daemon exposes (byte-identical names to System's), plus
// tenant-labelled aggregates and the arbiter's and lifecycle's
// activity. Per-tenant labelled series are registered for the
// construction-time tenants only — the registry's label sets are fixed
// at registration, so tenants that churn through recycled slots later
// are observable via /tenants (which reports live membership), not via
// new metric series. A recycled slot's series go quiet (nil-agent
// guard) rather than mislabel another tenant's numbers.
func (s *MultiSystem) registerMultiMetrics() {
	l := lockedRegistrar{&s.mu, s.tel.Registry}
	registerMachineMetrics(l, s.m)

	arb := s.plane.Arbiter()
	l.counter("artmem_arbiter_rebalances_total",
		"Dynamic fast-tier quota rebalances the arbiter executed.",
		func() uint64 { return arb.Rebalances() })
	l.gauge("artmem_tenants_active",
		"Tenant slots currently in the active lifecycle state.",
		func() float64 { return float64(s.plane.ActiveTenants()) })
	l.counter("artmem_tenant_registrations_total",
		"Tenants admitted over the system's lifetime.",
		func() uint64 { return s.plane.Stats().Registrations })
	l.counter("artmem_tenant_deregistrations_total",
		"Tenant reclamations committed (graceful and crash).",
		func() uint64 { return s.plane.Stats().Deregistrations })
	l.counter("artmem_tenant_crashes_total",
		"Tenants force-deregistered by a crash.",
		func() uint64 { return s.plane.Stats().Crashes })
	l.counter("artmem_tenant_reclaim_rollbacks_total",
		"Reclamation transactions interrupted and rolled back.",
		func() uint64 { return s.plane.Stats().ReclaimRollbacks })
	l.counter("artmem_tenant_registrations_throttled_total",
		"Registrations deferred by arrival backpressure.",
		func() uint64 { return s.plane.Stats().RegistrationsThrottled })
	initial := s.plane.ActiveTenants()
	for i := 0; i < initial; i++ {
		i := i
		id := memsim.TenantID(i)
		origName := s.plane.Tenant(i).Name
		name := telemetry.L("tenant", origName)
		mine := func() bool { return s.plane.Tenant(i).Name == origName }
		l.gauge("artmem_tenant_fast_pages",
			"Fast-tier pages resident per tenant.",
			func() float64 {
				if !mine() {
					return 0
				}
				return float64(s.m.TenantUsedPages(id, memsim.Fast))
			}, name)
		l.gauge("artmem_tenant_slow_pages",
			"Slow-tier pages resident per tenant.",
			func() float64 {
				if !mine() {
					return 0
				}
				return float64(s.m.TenantUsedPages(id, memsim.Slow))
			}, name)
		l.gauge("artmem_tenant_quota_pages",
			"Fast-tier quota per tenant (0 = unlimited, arbiter off).",
			func() float64 {
				if !mine() {
					return 0
				}
				return float64(arb.Quota(i))
			}, name)
		l.counter("artmem_tenant_accesses_total",
			"Cache-missing accesses per tenant per tier.",
			func() uint64 { return s.m.TenantCounters(id).FastAccesses },
			name, telemetry.L("tier", "fast"))
		l.counter("artmem_tenant_accesses_total", "",
			func() uint64 { return s.m.TenantCounters(id).SlowAccesses },
			name, telemetry.L("tier", "slow"))
		l.gauge("artmem_tenant_hit_ratio",
			"Cumulative fast-tier access share per tenant.",
			func() float64 { return s.m.TenantCounters(id).DRAMRatio() }, name)
		l.counter("artmem_tenant_promotions_total",
			"Slow-to-fast moves of the tenant's pages.",
			func() uint64 { return s.m.TenantCounters(id).Promotions }, name)
		l.counter("artmem_tenant_demotions_total",
			"Fast-to-slow moves of the tenant's pages.",
			func() uint64 { return s.m.TenantCounters(id).Demotions }, name)
		l.counter("artmem_tenant_admission_denials_total",
			"Promotions denied by the arbiter's admission control.",
			func() uint64 { return arb.Denials(i) }, name)
		l.gauge("artmem_tenant_degraded",
			"1 while the tenant's agent runs the heuristic fallback, else 0.",
			func() float64 {
				if a := s.agents[i]; a != nil && mine() && a.degraded {
					return 1
				}
				return 0
			}, name)
	}
}

// Telemetry returns the shared registry + trace served by the control
// endpoints. Per-tenant agent telemetry lives on the agents' own sets
// (Agent(i).Telemetry()).
func (s *MultiSystem) Telemetry() *telemetry.Set { return s.tel }

// Machine returns the underlying machine. Callers must not use it
// concurrently with a started MultiSystem except through MultiSystem
// methods.
func (s *MultiSystem) Machine() *memsim.Machine { return s.m }

// Plane returns the tenancy control plane.
func (s *MultiSystem) Plane() *tenancy.Plane { return s.plane }

// NumTenants returns the number of tenants.
func (s *MultiSystem) NumTenants() int { return len(s.agents) }

// Agent returns tenant i's ArtMem agent.
func (s *MultiSystem) Agent(i int) *ArtMem { return s.agents[i] }

// Injector returns the installed fault injector, or nil.
func (s *MultiSystem) Injector() *faultinject.Injector { return s.injector }

// Start launches the sampling, migration, and watchdog threads. It is a
// no-op if already started.
func (s *MultiSystem) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.wg.Add(2)
	go s.samplingThread()
	go s.migrationThread()
	if s.watchdogInterval > 0 {
		s.wg.Add(1)
		go s.watchdogThread()
	}
}

// Stop halts the background threads and waits for them. Idempotent.
func (s *MultiSystem) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
}

// Access performs one application memory access on behalf of tenant i:
// the machine charges the access (and any first-touch allocation) to
// that tenant.
func (s *MultiSystem) Access(tenant int, addr uint64, write bool) {
	s.mu.Lock()
	s.m.SetCurrentTenant(memsim.TenantID(tenant))
	s.m.Access(addr, write)
	s.mu.Unlock()
}

// AccessBatch performs a batch of tenant i's accesses under one lock
// acquisition. addrs and writes must have equal length.
func (s *MultiSystem) AccessBatch(tenant int, addrs []uint64, writes []bool) {
	s.mu.Lock()
	s.m.SetCurrentTenant(memsim.TenantID(tenant))
	for i, a := range addrs {
		s.m.Access(a, writes[i])
	}
	s.mu.Unlock()
}

// Counters returns a snapshot of the machine-wide counters.
func (s *MultiSystem) Counters() memsim.Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Counters()
}

// TenantCounters returns tenant i's counter slice.
func (s *MultiSystem) TenantCounters(i int) memsim.TenantCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.TenantCounters(memsim.TenantID(i))
}

// Now returns the machine's virtual time.
func (s *MultiSystem) Now() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Now()
}

// Health returns the runtime's liveness snapshot; Degraded reports
// whether ANY tenant's agent is in the heuristic fallback.
func (s *MultiSystem) Health() Health {
	s.mu.Lock()
	degraded := false
	for _, a := range s.agents {
		if a != nil && a.degraded {
			degraded = true
			break
		}
	}
	s.mu.Unlock()
	return Health{
		SamplingBeats:   s.sampleBeats.Value(),
		MigrationBeats:  s.migrateBeats.Value(),
		SamplingStalls:  s.sampleStalls.Value(),
		MigrationStalls: s.migrateStalls.Value(),
		Panics:          s.panics.Value(),
		Degraded:        degraded,
	}
}

// TenantStatus is one tenant's row of a TenantsReport — the JSON shape
// served per tenant on /tenants (schema-pinned by test).
type TenantStatus struct {
	Name             string  `json:"name"`
	Slot             int     `json:"slot"`
	State            string  `json:"state"`
	SLOClass         string  `json:"slo_class"`
	Weight           int     `json:"weight"`
	QuotaPages       int     `json:"quota_pages"`
	FastPages        int     `json:"fast_pages"`
	SlowPages        int     `json:"slow_pages"`
	FastAccesses     uint64  `json:"fast_accesses"`
	SlowAccesses     uint64  `json:"slow_accesses"`
	HitRatio         float64 `json:"hit_ratio"`
	Promotions       uint64  `json:"promotions"`
	Demotions        uint64  `json:"demotions"`
	AdmissionDenials uint64  `json:"admission_denials"`
	Preemptions      uint64  `json:"preemptions"`
	Decisions        uint64  `json:"decisions"`
	Threshold        uint32  `json:"threshold"`
	Degraded         bool    `json:"degraded"`
}

// TenantsReport is the full /tenants payload: arbiter posture, the
// plane's lifecycle totals, plus one TenantStatus per occupied slot
// (active and draining), in slot order.
type TenantsReport struct {
	ArbiterMode       string         `json:"arbiter_mode"`
	AdmissionControl  bool           `json:"admission_control"`
	FastCapacityPages int            `json:"fast_capacity_pages"`
	Capacity          int            `json:"capacity"`
	ActiveTenants     int            `json:"active_tenants"`
	Rebalances        uint64         `json:"rebalances"`
	Registrations     uint64         `json:"registrations"`
	Deregistrations   uint64         `json:"deregistrations"`
	Crashes           uint64         `json:"crashes"`
	ReclaimRollbacks  uint64         `json:"reclaim_rollbacks"`
	Throttled         uint64         `json:"registrations_throttled"`
	Tenants           []TenantStatus `json:"tenants"`
}

// TenantsReport snapshots the control plane: per-tenant occupancy,
// quota, traffic split, migration activity, and agent state. Safe to
// call concurrently with a running MultiSystem.
func (s *MultiSystem) TenantsReport() TenantsReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	arb := s.plane.Arbiter()
	st := s.plane.Stats()
	rep := TenantsReport{
		ArbiterMode:       arb.Mode().String(),
		AdmissionControl:  arb.AdmissionEnabled(),
		FastCapacityPages: s.m.CapacityPages(memsim.Fast),
		Capacity:          s.plane.Capacity(),
		ActiveTenants:     s.plane.ActiveTenants(),
		Rebalances:        arb.Rebalances(),
		Registrations:     st.Registrations,
		Deregistrations:   st.Deregistrations,
		Crashes:           st.Crashes,
		ReclaimRollbacks:  st.ReclaimRollbacks,
		Throttled:         st.RegistrationsThrottled,
	}
	for i, a := range s.agents {
		if s.plane.State(i) == tenancy.StateEmpty {
			continue
		}
		id := memsim.TenantID(i)
		tc := s.m.TenantCounters(id)
		t := s.plane.Tenant(i)
		row := TenantStatus{
			Name:             t.Name,
			Slot:             i,
			State:            s.plane.State(i).String(),
			SLOClass:         t.Class.String(),
			Weight:           t.Weight,
			QuotaPages:       arb.Quota(i),
			FastPages:        s.m.TenantUsedPages(id, memsim.Fast),
			SlowPages:        s.m.TenantUsedPages(id, memsim.Slow),
			FastAccesses:     tc.FastAccesses,
			SlowAccesses:     tc.SlowAccesses,
			HitRatio:         tc.DRAMRatio(),
			Promotions:       tc.Promotions,
			Demotions:        tc.Demotions,
			AdmissionDenials: arb.Denials(i),
			Preemptions:      arb.Preemptions(i),
		}
		if a != nil {
			row.Decisions = a.Decisions()
			row.Threshold = a.threshold
			row.Degraded = a.degraded
		}
		rep.Tenants = append(rep.Tenants, row)
	}
	return rep
}

// runProtected executes one worker iteration under the lock, recovering
// from panics, exactly as System.runProtected does.
func (s *MultiSystem) runProtected(beat *telemetry.Counter, f func()) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Inc()
		}
	}()
	s.mu.Lock()
	t0 := time.Now()
	defer func() {
		s.ctlBusy.Add(uint64(time.Since(t0)))
		s.mu.Unlock()
	}()
	f()
	beat.Inc()
}

// ControlBusyNs returns the cumulative wall nanoseconds the shared
// control loop held the plane lock — the serve layer's migration-stall
// attribution source, as System.ControlBusyNs.
func (s *MultiSystem) ControlBusyNs() int64 { return int64(s.ctlBusy.Value()) }

// SetDraining marks (or clears) the graceful-shutdown state advertised
// by /healthz.
func (s *MultiSystem) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports the graceful-shutdown state set by SetDraining.
func (s *MultiSystem) Draining() bool { return s.draining.Load() }

// samplingThread drains every tenant agent's PEBS buffer each period —
// the single shared ksampled serving all memcgs.
func (s *MultiSystem) samplingThread() {
	defer s.wg.Done()
	tick := time.NewTicker(s.samplingInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.runProtected(s.sampleBeats, func() {
				for _, a := range s.agents {
					if a != nil {
						a.PumpSamples()
					}
				}
			})
		}
	}
}

// migrationThread opens one arbiter control period (budget refill,
// possible dynamic rebalance) and then runs every tenant agent's RL
// decision period under it — the shared kmigrated.
func (s *MultiSystem) migrationThread() {
	defer s.wg.Done()
	tick := time.NewTicker(s.migrationInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.runProtected(s.migrateBeats, func() {
				s.plane.BeginPeriod()
				// Interrupted departures retry once per period so a
				// draining slot eventually empties.
				s.plane.RetryDrains()
				now := s.m.Now()
				for _, a := range s.agents {
					if a != nil {
						a.Tick(now)
					}
				}
			})
		}
	}
}

// watchdogThread checks once per interval that both workers' heartbeats
// advanced, sharing System's watchdogCheck logic.
func (s *MultiSystem) watchdogThread() {
	defer s.wg.Done()
	tick := time.NewTicker(s.watchdogInterval)
	defer tick.Stop()
	var w watchdogState
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.watchdogCheck(&w)
		}
	}
}

// watchdogCheck performs one watchdog interval's stall accounting (see
// System.watchdogCheck).
func (s *MultiSystem) watchdogCheck(w *watchdogState) {
	if cur := s.sampleBeats.Value(); cur == w.lastSample {
		s.sampleStalls.Inc()
	} else {
		w.lastSample = cur
	}
	if cur := s.migrateBeats.Value(); cur == w.lastMigrate {
		s.migrateStalls.Inc()
	} else {
		w.lastMigrate = cur
	}
}
