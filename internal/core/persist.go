package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"artmem/internal/rl"
)

// Q-table persistence: the paper's evaluation reuses Q-tables across
// program runs ("ArtMem runs the Liblinear program several times to
// initialize the RL algorithm", §6.2) and transplants them across
// workloads in the robustness study (§6.3.6). These helpers serialize
// both ArtMem tables into one snapshot file.

const snapshotMagic = uint32(0x41724d53) // "ArMS"

// SaveQTables writes both of the agent's Q-tables to w. The agent must
// be attached (tables exist only after Attach).
func (a *ArtMem) SaveQTables(w io.Writer) error {
	if a.qMig == nil {
		return fmt.Errorf("core: agent not attached; no Q-tables to save")
	}
	if err := binary.Write(w, binary.LittleEndian, snapshotMagic); err != nil {
		return err
	}
	for _, tb := range []*rl.Table{a.qMig, a.qThr} {
		data, err := tb.MarshalBinary()
		if err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(data))); err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	return nil
}

// RestoreQTables loads a snapshot written by SaveQTables into the
// attached agent. Table dimensions must match the agent's configuration.
// The restore is transactional: both tables are decoded and validated
// into staging copies first, and the live tables are only overwritten
// once the entire snapshot has parsed — a truncated or corrupted
// snapshot returns a descriptive error and leaves the agent's learning
// state untouched.
func (a *ArtMem) RestoreQTables(r io.Reader) error {
	if a.qMig == nil {
		return fmt.Errorf("core: agent not attached; nowhere to restore")
	}
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("core: snapshot header: %w", err)
	}
	if magic != snapshotMagic {
		return fmt.Errorf("core: bad snapshot magic %#x", magic)
	}
	live := []*rl.Table{a.qMig, a.qThr}
	staged := make([]*rl.Table, len(live))
	for i, tb := range live {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return fmt.Errorf("core: snapshot table %d length: %w", i, err)
		}
		if n > 1<<20 {
			return fmt.Errorf("core: implausible table %d size %d", i, n)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return fmt.Errorf("core: snapshot table %d body: %w", i, err)
		}
		tmp := tb.Clone()
		if err := tmp.UnmarshalBinary(data); err != nil {
			return fmt.Errorf("core: snapshot table %d: %w", i, err)
		}
		staged[i] = tmp
	}
	// Commit: every table parsed and matched dimensions.
	for i, tb := range live {
		if err := tb.CopyQFrom(staged[i]); err != nil {
			return err // unreachable: staged tables share live dimensions
		}
	}
	return nil
}

// SaveQTablesFile writes the snapshot to path.
func (a *ArtMem) SaveQTablesFile(path string) error {
	var buf bytes.Buffer
	if err := a.SaveQTables(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// RestoreQTablesFile loads a snapshot from path.
func (a *ArtMem) RestoreQTablesFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return a.RestoreQTables(bytes.NewReader(data))
}
