package core

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestControlHandlerEndpoints(t *testing.T) {
	s := NewSystem(testSystemConfig())
	// Generate some activity without starting background threads (keeps
	// the test deterministic), then drive one decision manually.
	for p := uint64(0); p < 32; p++ {
		s.Access(p*64*1024, false)
	}
	s.mu.Lock()
	s.pol.Tick(s.m.Now())
	s.mu.Unlock()

	srv := httptest.NewServer(s.ControlHandler())
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}

	if body := get("/memory.hit_ratio_show"); !strings.Contains(body, "fast ") ||
		!strings.Contains(body, "slow ") || !strings.Contains(body, "state ") {
		t.Errorf("hit_ratio_show body:\n%s", body)
	}
	if body := get("/memory.action_show"); !strings.Contains(body, "migration_pages ") ||
		!strings.Contains(body, "decisions 1") {
		t.Errorf("action_show body:\n%s", body)
	}
	if body := get("/memory.threshold_show"); !strings.Contains(body, "threshold ") {
		t.Errorf("threshold_show body:\n%s", body)
	}

	var stats struct {
		VirtualNs    int64   `json:"virtual_ns"`
		FastAccesses uint64  `json:"fast_accesses"`
		SlowAccesses uint64  `json:"slow_accesses"`
		DRAMRatio    float64 `json:"dram_ratio"`
	}
	if err := json.Unmarshal([]byte(get("/stats")), &stats); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if stats.FastAccesses+stats.SlowAccesses != 32 {
		t.Errorf("stats accesses = %d/%d, want 32 total",
			stats.FastAccesses, stats.SlowAccesses)
	}
	if stats.VirtualNs <= 0 {
		t.Errorf("virtual time %d", stats.VirtualNs)
	}
}

func TestControlHandlerUnknownPath(t *testing.T) {
	s := NewSystem(testSystemConfig())
	srv := httptest.NewServer(s.ControlHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}
}

func TestStatsReportsResilienceCounters(t *testing.T) {
	cfg := testSystemConfig()
	s := NewSystem(cfg)
	for p := uint64(0); p < 32; p++ {
		s.Access(p*64*1024, false)
	}
	s.mu.Lock()
	s.pol.Tick(s.m.Now())
	// Seed distinctive values so the JSON encoding is checked, not just
	// the field names.
	s.pol.ctRetries.Add(3)
	s.pol.ctSkips.Add(2)
	s.pol.ctRollbacks.Add(1)
	s.pol.ctTierFullStops.Add(4)
	s.pol.ctDegradedTicks.Add(5)
	s.pol.ctDegradedIn.Add(1)
	s.pol.degraded = true
	s.mu.Unlock()

	srv := httptest.NewServer(s.ControlHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"migration_retries":   3,
		"migration_skips":     2,
		"migration_rollbacks": 1,
		"tier_full_stops":     4,
		"degraded_ticks":      5,
		"degraded_entries":    1,
	}
	for key, v := range want {
		f, ok := got[key].(float64)
		if !ok {
			t.Errorf("/stats missing %q (got %v)", key, got[key])
			continue
		}
		if f != v {
			t.Errorf("/stats %s = %g, want %g", key, f, v)
		}
	}
	if deg, ok := got["degraded"].(bool); !ok || !deg {
		t.Errorf("/stats degraded = %v, want true", got["degraded"])
	}
	for _, key := range []string{"migration_failures", "sample_drops", "watchdog_stalls", "panics"} {
		if _, ok := got[key]; !ok {
			t.Errorf("/stats missing %q", key)
		}
	}
}
