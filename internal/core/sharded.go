package core

import (
	"sync"
	"sync/atomic"
	"time"

	"artmem/internal/faultinject"
	"artmem/internal/memsim"
	"artmem/internal/telemetry"
	"artmem/internal/tenancy"
)

// ShardedSystem is the scale-out online runtime: one ArtMem agent per
// machine shard, driven by shared background threads, over a
// memsim.ShardedMachine whose access hot path is drivable from many
// goroutines concurrently. Where System serializes every access and
// control pass behind one global mutex, ShardedSystem's AccessBatch
// takes only the locks of the shards a batch actually touches, so
// frontend pumps on different shards proceed in parallel; the control
// threads visit shards one at a time, holding one shard lock each —
// an access batch is never blocked behind a whole-machine sampling or
// migration pass.
//
// Each agent sees a self-contained machine (its shard): local page
// space, local LRU lists, local PEBS ring, local virtual clock. The
// cross-shard coupling is capacity, not pages — per decision period
// the migration thread measures per-shard slow-access demand, splits
// the rebalance budget proportionally (tenancy.SplitBudget), and
// moves free fast-tier capacity toward demanded shards through the
// sharded machine's epoch-based TransferCapacity transactions.
type ShardedSystem struct {
	sm     *memsim.ShardedMachine
	agents []*ArtMem
	// agentTels holds each agent's private telemetry set: ArtMem's
	// metric names are fixed, so per-shard agents cannot share one
	// registry (the MultiSystem discipline).
	agentTels []*telemetry.Set

	injector *faultinject.Injector

	samplingInterval  time.Duration
	migrationInterval time.Duration
	watchdogInterval  time.Duration
	rebalance         int

	stop    chan struct{}
	wg      sync.WaitGroup
	mu      sync.Mutex // guards started
	started bool

	tel *telemetry.Set

	sampleBeats   *telemetry.Counter
	migrateBeats  *telemetry.Counter
	sampleStalls  *telemetry.Counter
	migrateStalls *telemetry.Counter
	panics        *telemetry.Counter
	ctlBusy       *telemetry.Counter
	transfers     *telemetry.Counter

	// lastSlow tracks per-shard slow-access counts at the previous
	// decision period; the delta is the demand signal the budget
	// splitter consumes. Touched only by the migration thread.
	lastSlow []uint64

	draining atomic.Bool
}

// ShardedSystemConfig parameterizes a ShardedSystem.
type ShardedSystemConfig struct {
	// Machine configures the simulated tiered memory (pre-split; the
	// sharded machine derives the per-shard slices).
	Machine memsim.Config
	// Shards is the shard count; must be a positive power of two.
	// 0 uses 8.
	Shards int
	// Policy configures the per-shard ArtMem agents. Each shard's
	// agent gets Seed+shard so exploration decorrelates across shards
	// while staying deterministic.
	Policy Config
	// SamplingInterval, MigrationInterval and WatchdogInterval follow
	// SystemConfig's semantics and defaults.
	SamplingInterval  time.Duration
	MigrationInterval time.Duration
	WatchdogInterval  time.Duration
	// RebalancePages is the machine-wide per-period cross-shard
	// capacity rebalance budget in pages, split across shards by
	// demand each period. 0 uses 32; negative disables rebalancing.
	RebalancePages int
	// Faults, when non-nil, installs a fault injector on every shard's
	// migration path before the agents attach.
	Faults *faultinject.Config
	// Telemetry, when non-nil, receives the runtime's aggregate
	// metrics; nil creates a fresh set. Per-agent metrics live on
	// private per-shard sets (AgentTelemetry).
	Telemetry *telemetry.Set
}

// NewShardedSystem builds the sharded runtime. Call Start to launch
// the background threads and Stop to halt them.
func NewShardedSystem(cfg ShardedSystemConfig) *ShardedSystem {
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	if cfg.SamplingInterval == 0 {
		cfg.SamplingInterval = 2 * time.Millisecond
	}
	if cfg.MigrationInterval == 0 {
		cfg.MigrationInterval = 20 * time.Millisecond
	}
	if cfg.WatchdogInterval == 0 {
		cfg.WatchdogInterval = time.Second
	}
	if cfg.RebalancePages == 0 {
		cfg.RebalancePages = 32
	}
	sm := memsim.NewShardedMachine(cfg.Machine, cfg.Shards)
	var inj *faultinject.Injector
	if cfg.Faults != nil {
		inj = faultinject.New(*cfg.Faults)
		sm.SetFaultInjector(inj)
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.NewSet()
	}
	s := &ShardedSystem{
		sm:                sm,
		injector:          inj,
		samplingInterval:  cfg.SamplingInterval,
		migrationInterval: cfg.MigrationInterval,
		watchdogInterval:  cfg.WatchdogInterval,
		rebalance:         cfg.RebalancePages,
		stop:              make(chan struct{}),
		tel:               tel,
		lastSlow:          make([]uint64, cfg.Shards),
	}
	for i := 0; i < cfg.Shards; i++ {
		pcfg := cfg.Policy
		pcfg.Seed += uint64(i)
		a := New(pcfg)
		at := telemetry.NewSet()
		a.SetTelemetry(at)
		a.Attach(sm.Shard(i)) // pre-Start wiring; no shard lock needed yet
		s.agents = append(s.agents, a)
		s.agentTels = append(s.agentTels, at)
	}
	reg := tel.Registry
	s.sampleBeats = reg.Counter("artmem_sharded_sampling_beats_total",
		"Completed sampling passes over all shards.")
	s.migrateBeats = reg.Counter("artmem_sharded_migration_beats_total",
		"Completed migration passes over all shards.")
	s.sampleStalls = reg.Counter("artmem_sharded_sampling_stalls_total",
		"Watchdog intervals in which the sampling thread made no progress.")
	s.migrateStalls = reg.Counter("artmem_sharded_migration_stalls_total",
		"Watchdog intervals in which the migration thread made no progress.")
	s.panics = reg.Counter("artmem_sharded_worker_panics_total",
		"Recovered panics in the shared worker threads.")
	s.ctlBusy = reg.Counter("artmem_sharded_control_busy_ns_total",
		"Wall nanoseconds the control threads held shard locks — the serve layer's stall-attribution source. Per-shard, so concurrent access batches on other shards proceed during it.")
	s.transfers = reg.Counter("artmem_sharded_capacity_transfers_total",
		"Committed cross-shard capacity-transfer transactions (rebalance pass).")
	reg.GaugeFunc("artmem_sharded_shards",
		"Shard count of the sharded machine.",
		func() float64 { return float64(cfg.Shards) })
	return s
}

// Machine returns the underlying sharded machine. After Start, use it
// only through its locked data-plane methods.
func (s *ShardedSystem) Machine() *memsim.ShardedMachine { return s.sm }

// NumShards returns the shard count.
func (s *ShardedSystem) NumShards() int { return len(s.agents) }

// Agent returns shard i's ArtMem agent. After Start, interrogate it
// only inside Machine().RunShard(i, ...).
func (s *ShardedSystem) Agent(i int) *ArtMem { return s.agents[i] }

// AgentTelemetry returns shard i's private telemetry set.
func (s *ShardedSystem) AgentTelemetry(i int) *telemetry.Set { return s.agentTels[i] }

// Telemetry returns the runtime's aggregate telemetry set.
func (s *ShardedSystem) Telemetry() *telemetry.Set { return s.tel }

// Injector returns the installed fault injector, or nil.
func (s *ShardedSystem) Injector() *faultinject.Injector { return s.injector }

// ControlBusyNs returns cumulative wall nanoseconds the control
// threads spent holding shard locks (System.ControlBusyNs's analogue;
// here the locks are per-shard, so the serving layer's stall
// attribution is an upper bound on any one batch's exposure).
func (s *ShardedSystem) ControlBusyNs() int64 { return int64(s.ctlBusy.Value()) }

// SetDraining marks (or clears) the graceful-shutdown state.
func (s *ShardedSystem) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports the graceful-shutdown state.
func (s *ShardedSystem) Draining() bool { return s.draining.Load() }

// Access performs one application access (shard-locked).
func (s *ShardedSystem) Access(addr uint64, write bool) { s.sm.Access(addr, write) }

// AccessBatch applies a batch of accesses, locking only the shards
// the batch touches. Safe to call from many goroutines concurrently —
// this is the scale-out entry point the serving frontend's per-slot
// pump fan-out drives.
func (s *ShardedSystem) AccessBatch(addrs []uint64, writes []bool) {
	s.sm.AccessBatch(addrs, writes)
}

// AccessBatchParallel applies one batch across up to g goroutines
// (whole-shard ownership; deterministic aggregates for every g).
func (s *ShardedSystem) AccessBatchParallel(addrs []uint64, writes []bool, g int) {
	s.sm.AccessBatchParallel(addrs, writes, g)
}

// AllocRange first-touch allocates [addr, addr+size) by write-touching
// each page through the shard-locked access path; returns pages
// touched. The walk is capped at one full pass of the machine.
func (s *ShardedSystem) AllocRange(addr, size uint64) int {
	if size == 0 {
		return 0
	}
	ps := uint64(s.sm.PageSize())
	first := addr / ps
	n := (addr+size-1)/ps - first + 1
	if n > uint64(s.sm.NumPages()) {
		n = uint64(s.sm.NumPages())
	}
	for i := uint64(0); i < n; i++ {
		s.sm.Access((first+i)*ps, true)
	}
	return int(n)
}

// FreeRange unallocates every allocated page of [addr, addr+size)
// under the owning shards' locks; returns pages freed.
func (s *ShardedSystem) FreeRange(addr, size uint64) int {
	if size == 0 {
		return 0
	}
	ps := uint64(s.sm.PageSize())
	first := addr / ps
	n := (addr+size-1)/ps - first + 1
	if n > uint64(s.sm.NumPages()) {
		n = uint64(s.sm.NumPages())
	}
	freed := 0
	for i := uint64(0); i < n; i++ {
		p := s.sm.PageOf((first + i) * ps)
		s.sm.RunShardOf(p, func(m *memsim.Machine, lp memsim.PageID) {
			if m.Allocated(lp) && m.FreePage(lp) == nil {
				freed++
			}
		})
	}
	return freed
}

// Counters returns the machine-wide counter sums, quiescing all
// shards for a consistent snapshot.
func (s *ShardedSystem) Counters() memsim.Counters {
	var c memsim.Counters
	s.sm.Quiesce(func() { c = s.sm.Counters() })
	return c
}

// Now returns the machine's virtual time (max shard clock), quiesced.
func (s *ShardedSystem) Now() int64 {
	var now int64
	s.sm.Quiesce(func() { now = s.sm.Now() })
	return now
}

// Health returns the runtime's liveness snapshot; Degraded reports
// whether ANY shard's agent is in the heuristic fallback.
func (s *ShardedSystem) Health() Health {
	degraded := false
	for i, a := range s.agents {
		var d bool
		s.sm.RunShard(i, func(*memsim.Machine) { d = a.Degraded() })
		if d {
			degraded = true
			break
		}
	}
	return Health{
		SamplingBeats:   s.sampleBeats.Value(),
		MigrationBeats:  s.migrateBeats.Value(),
		SamplingStalls:  s.sampleStalls.Value(),
		MigrationStalls: s.migrateStalls.Value(),
		Panics:          s.panics.Value(),
		Degraded:        degraded,
	}
}

// Start launches the shared sampling, migration, and watchdog
// threads. No-op if already started.
func (s *ShardedSystem) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.wg.Add(2)
	go s.thread(s.samplingInterval, s.sampleBeats, s.samplePass)
	go s.thread(s.migrationInterval, s.migrateBeats, s.migratePass)
	if s.watchdogInterval > 0 {
		s.wg.Add(1)
		go s.watchdogThread()
	}
}

// Stop halts the background threads and waits for them. Idempotent.
func (s *ShardedSystem) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
}

// thread runs pass once per interval with panic recovery and busy
// accounting, bumping beat on success.
func (s *ShardedSystem) thread(interval time.Duration, beat *telemetry.Counter, pass func()) {
	defer s.wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.runProtected(beat, pass)
		}
	}
}

// runProtected runs one control pass, recovering panics (a crashing
// per-shard tick must not take the shared thread down) and charging
// the pass's wall time to the busy counter.
func (s *ShardedSystem) runProtected(beat *telemetry.Counter, pass func()) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Inc()
		}
	}()
	t0 := time.Now()
	defer func() { s.ctlBusy.Add(uint64(time.Since(t0))) }()
	pass()
	beat.Inc()
}

// samplePass drains every shard's PEBS ring into its agent's
// recency structures, one shard lock at a time.
func (s *ShardedSystem) samplePass() {
	for i, a := range s.agents {
		s.sm.RunShard(i, func(*memsim.Machine) { a.PumpSamples() })
	}
}

// migratePass runs one decision period: measure per-shard demand,
// split and install the rebalance budget, move free fast-tier
// capacity toward demanded shards, then run every agent's RL tick on
// its own shard.
func (s *ShardedSystem) migratePass() {
	n := len(s.agents)
	demand := make([]uint64, n)
	for i := range s.agents {
		s.sm.RunShard(i, func(m *memsim.Machine) {
			slow := m.Counters().SlowAccesses
			demand[i] = slow - s.lastSlow[i]
			s.lastSlow[i] = slow
		})
	}
	if s.rebalance > 0 {
		budgets := tenancy.SplitBudget(s.rebalance, demand)
		for i, b := range budgets {
			s.sm.SetShardBudget(i, b)
		}
		s.rebalanceCapacity(budgets)
	}
	for i, a := range s.agents {
		s.sm.RunShard(i, func(m *memsim.Machine) { a.Tick(m.Now()) })
	}
}

// rebalanceCapacity moves free fast-tier capacity toward shards with
// demand, bounded by each recipient's budget share. Donors are chosen
// richest-free-first and always keep one free page of slack so a
// donor is never stripped to the exact waterline its own agent is
// about to promote into. Every move is an epoch-bumping
// TransferCapacity transaction; failures (budget, stranded pages) are
// skipped, not retried — next period re-measures.
func (s *ShardedSystem) rebalanceCapacity(budgets []int) {
	n := len(s.agents)
	// Order recipients by descending demand share (budget), ties to
	// the lowest index, deterministically.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && budgets[order[j]] > budgets[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, to := range order {
		want := budgets[to]
		if want <= 0 {
			continue
		}
		var free int
		s.sm.RunShard(to, func(m *memsim.Machine) { free = m.FreePages(memsim.Fast) })
		if free > 0 {
			continue // has local headroom; let its agent use it first
		}
		for donor := 0; donor < n && want > 0; donor++ {
			if donor == to {
				continue
			}
			var spare int
			s.sm.RunShard(donor, func(m *memsim.Machine) { spare = m.FreePages(memsim.Fast) - 1 })
			if spare <= 0 {
				continue
			}
			k := want
			if spare < k {
				k = spare
			}
			if s.sm.TransferCapacity(donor, to, memsim.Fast, k) == nil {
				s.transfers.Add(uint64(k))
				want -= k
			}
		}
	}
}

// watchdogThread mirrors System's: a worker whose beat does not
// advance across an interval is counted as stalled.
func (s *ShardedSystem) watchdogThread() {
	defer s.wg.Done()
	tick := time.NewTicker(s.watchdogInterval)
	defer tick.Stop()
	var lastSample, lastMigrate uint64
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			if cur := s.sampleBeats.Value(); cur == lastSample {
				s.sampleStalls.Inc()
			} else {
				lastSample = cur
			}
			if cur := s.migrateBeats.Value(); cur == lastMigrate {
				s.migrateStalls.Inc()
			} else {
				lastMigrate = cur
			}
		}
	}
}
