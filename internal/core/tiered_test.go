package core

import (
	"sort"
	"strings"
	"testing"
	"time"

	"artmem/internal/memsim"
	"artmem/internal/tier"
)

func testTieredConfig(t *testing.T, spec string, nonExclusive bool) TieredSystemConfig {
	t.Helper()
	ch, err := tier.ParseChain(spec)
	if err != nil {
		t.Fatalf("ParseChain(%q): %v", spec, err)
	}
	mcfg := memsim.DefaultConfig(64*64*1024, 0, 64*1024)
	mcfg.CacheLines = 0
	mcfg.Chain = ch
	mcfg.NonExclusive = nonExclusive
	return TieredSystemConfig{
		Machine:           mcfg,
		Policy:            Config{SamplePeriod: 1},
		SamplingInterval:  500 * time.Microsecond,
		MigrationInterval: time.Millisecond,
	}
}

func TestTieredSystemStartStopIdempotent(t *testing.T) {
	s := NewTieredSystem(testTieredConfig(t, "DRAM:cap=16/CXL:cap=16/PM", false))
	s.Start()
	s.Start() // no-op
	s.Stop()
	s.Stop() // no-op
}

// tieredTick drives one sampling + decision period synchronously, the
// way the background threads would, without real timers.
func tieredTick(s *TieredSystem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samplePass()
	s.migratePass()
}

// TestTieredSystemRelaysHotPages pins the boundary relay: under a
// skewed workload on a 3-tier chain, per-boundary agents promote the
// hot set up the chain — both boundaries see migrations, and hot pages
// end above where first touch placed them.
func TestTieredSystemRelaysHotPages(t *testing.T) {
	s := NewTieredSystem(testTieredConfig(t, "DRAM:cap=16/CXL:cap=16/PM", false))
	if s.NumBoundaries() != 2 {
		t.Fatalf("boundaries %d, want 2", s.NumBoundaries())
	}
	const ps = 64 * 1024
	// Touch everything once (fills DRAM, CXL, then PM), then hammer a
	// hot set that first touch left in PM.
	for p := uint64(0); p < 64; p++ {
		s.Access(p*ps, false)
	}
	hot := []uint64{40, 41, 42, 43, 44, 45, 46, 47} // PM residents
	for round := 0; round < 60; round++ {
		for rep := 0; rep < 8; rep++ {
			for _, p := range hot {
				s.Access(p*ps, false)
			}
		}
		tieredTick(s)
	}
	b0 := s.Machine().BoundaryStatsAt(0)
	b1 := s.Machine().BoundaryStatsAt(1)
	if b1.Promotions == 0 {
		t.Fatalf("boundary PM→CXL never promoted: %+v / %+v", b0, b1)
	}
	climbed := 0
	for _, p := range hot {
		if s.Machine().TierOf(memsim.PageID(p)) < 2 {
			climbed++
		}
	}
	if climbed == 0 {
		t.Fatalf("no hot page left PM (b0 %+v, b1 %+v)", b0, b1)
	}
	if err := s.Machine().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTieredBoundaryBudgetCapsMigrations bounds each boundary's
// per-period migrations at the configured budget.
func TestTieredBoundaryBudgetCapsMigrations(t *testing.T) {
	cfg := testTieredConfig(t, "DRAM:cap=16/CXL:cap=16/PM", false)
	cfg.BoundaryBudget = 2
	s := NewTieredSystem(cfg)
	const ps = 64 * 1024
	for p := uint64(0); p < 64; p++ {
		s.Access(p*ps, false)
	}
	var prev [2]uint64
	for round := 0; round < 40; round++ {
		for rep := 0; rep < 8; rep++ {
			for p := uint64(32); p < 56; p++ {
				s.Access(p*ps, false)
			}
		}
		tieredTick(s)
		for b := 0; b < 2; b++ {
			st := s.Machine().BoundaryStatsAt(b)
			moved := st.Promotions + st.Demotions - prev[b]
			if moved > 2 {
				t.Fatalf("round %d boundary %d moved %d pages, budget 2", round, b, moved)
			}
			prev[b] = st.Promotions + st.Demotions
		}
	}
}

// TestTieredNonExclusiveRunsClean smoke-tests the shadow path under the
// full runtime: agents promote and demote with shadows live, and the
// machine invariants (which recount shadow frames) hold throughout.
func TestTieredNonExclusiveRunsClean(t *testing.T) {
	s := NewTieredSystem(testTieredConfig(t, "DRAM:cap=16/CXL:cap=16/PM", true))
	const ps = 64 * 1024
	for p := uint64(0); p < 64; p++ {
		s.Access(p*ps, false)
	}
	for round := 0; round < 50; round++ {
		base := uint64(16 * (round % 3)) // shift the hot set across tiers
		for rep := 0; rep < 8; rep++ {
			for p := base; p < base+16; p++ {
				s.Access(p*ps, round%5 == 0) // occasional writes invalidate
			}
		}
		tieredTick(s)
		if err := s.Machine().CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestTieredMetricsSchemaPinned pins the tier-labelled telemetry
// schema (ISSUE 10 satellite): the exact set of artmem_tier_*,
// artmem_boundary_*, and artmem_shadow_* series a 3-tier non-exclusive
// daemon exposes, in both the Prometheus text and JSON snapshot
// expositions. Series disappearing or labels drifting must fail
// loudly; additions extend this list deliberately.
func TestTieredMetricsSchemaPinned(t *testing.T) {
	s := NewTieredSystem(testTieredConfig(t, "DRAM:cap=16/CXL:cap=16/PM", true))
	for p := uint64(0); p < 64; p++ {
		s.Access(p*64*1024, false)
	}
	tieredTick(s)

	var sb strings.Builder
	if err := s.Telemetry().Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	prom := sb.String()
	snap := s.Telemetry().Registry.Snapshot()

	want := []string{
		`artmem_tier_index{tier="DRAM"}`,
		`artmem_tier_index{tier="CXL"}`,
		`artmem_tier_index{tier="PM"}`,
		`artmem_tier_pages{tier="DRAM"}`,
		`artmem_tier_pages{tier="CXL"}`,
		`artmem_tier_pages{tier="PM"}`,
		`artmem_tier_capacity_pages{tier="DRAM"}`,
		`artmem_tier_capacity_pages{tier="CXL"}`,
		`artmem_tier_capacity_pages{tier="PM"}`,
		`artmem_tier_shadow_pages{tier="DRAM"}`,
		`artmem_tier_shadow_pages{tier="CXL"}`,
		`artmem_tier_shadow_pages{tier="PM"}`,
		`artmem_tier_accesses_total{tier="DRAM"}`,
		`artmem_tier_accesses_total{tier="CXL"}`,
		`artmem_tier_accesses_total{tier="PM"}`,
		`artmem_boundary_promotions_total{boundary="DRAM|CXL"}`,
		`artmem_boundary_promotions_total{boundary="CXL|PM"}`,
		`artmem_boundary_demotions_total{boundary="DRAM|CXL"}`,
		`artmem_boundary_demotions_total{boundary="CXL|PM"}`,
		`artmem_boundary_shadow_discards_total{boundary="DRAM|CXL"}`,
		`artmem_boundary_shadow_discards_total{boundary="CXL|PM"}`,
		`artmem_shadow_invalidates_total`,
		`artmem_shadow_reclaims_total`,
	}
	for _, series := range want {
		if !strings.Contains(prom, series+" ") {
			t.Errorf("prometheus exposition missing %s", series)
		}
		if _, ok := snap[series]; !ok {
			t.Errorf("JSON snapshot missing %s", series)
		}
	}

	// The full tier/boundary/shadow surface is exactly the pinned set:
	// an unpinned artmem_tier_* / artmem_boundary_* / artmem_shadow_*
	// series is schema drift too.
	var got []string
	for key := range snap {
		if strings.HasPrefix(key, "artmem_tier_") ||
			strings.HasPrefix(key, "artmem_boundary_") ||
			strings.HasPrefix(key, "artmem_shadow_") {
			if strings.HasPrefix(key, "artmem_tiered_") {
				continue // runtime liveness counters, pinned elsewhere
			}
			got = append(got, key)
		}
	}
	sort.Strings(got)
	wantSorted := append([]string(nil), want...)
	sort.Strings(wantSorted)
	if strings.Join(got, "\n") != strings.Join(wantSorted, "\n") {
		t.Errorf("tier telemetry schema drifted:\n got:\n%s\n want:\n%s",
			strings.Join(got, "\n"), strings.Join(wantSorted, "\n"))
	}
}

// TestTieredHealthDegradedAggregation: Health.Degraded ORs over all
// boundary agents.
func TestTieredHealth(t *testing.T) {
	s := NewTieredSystem(testTieredConfig(t, "DRAM:cap=16/CXL:cap=16/PM", false))
	h := s.Health()
	if h.Degraded {
		t.Fatal("fresh system reports degraded")
	}
	s.agents[1].degraded = true
	if !s.Health().Degraded {
		t.Fatal("degraded boundary agent not surfaced")
	}
}
