package core

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"artmem/internal/memsim"
	"artmem/internal/tenancy"
)

// testMultiConfig builds a small two-tenant system: 128 pages (32
// fast) split under a static arbiter with admission control.
func testMultiConfig() MultiSystemConfig {
	mcfg := memsim.DefaultConfig(128*64*1024, 32*64*1024, 64*1024)
	mcfg.CacheLines = 0
	return MultiSystemConfig{
		Machine: mcfg,
		Tenants: []TenantConfig{
			{Name: "alpha", Weight: 1, Policy: Config{SamplePeriod: 1, Seed: 1}},
			{Name: "beta", Weight: 3, Policy: Config{SamplePeriod: 1, Seed: 2}},
		},
		Arbiter:           tenancy.ArbiterConfig{Mode: tenancy.ModeStatic, Admission: true},
		SamplingInterval:  500 * time.Microsecond,
		MigrationInterval: time.Millisecond,
	}
}

// driveMulti runs both tenants' traffic through a started MultiSystem
// long enough for the background threads to sample and tick.
func driveMulti(t *testing.T, s *MultiSystem) {
	t.Helper()
	s.Start()
	defer s.Stop()
	ps := uint64(64 * 1024)
	deadline := time.Now().Add(2 * time.Second)
	for round := 0; ; round++ {
		for i := 0; i < 40; i++ {
			s.Access(0, uint64(i)*ps, i%4 == 0)
			s.Access(1, (64+uint64(i))*ps, false)
		}
		if s.Agent(0).Decisions() > 0 && s.Agent(1).Decisions() > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("agents made no decisions within deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestMultiSystemRunsPerTenantAgents(t *testing.T) {
	s := NewMultiSystem(testMultiConfig())
	driveMulti(t, s)

	// Accesses were charged to the issuing tenant.
	for i := 0; i < s.NumTenants(); i++ {
		tc := s.TenantCounters(i)
		if tc.FastAccesses+tc.SlowAccesses == 0 {
			t.Errorf("tenant %d has no accesses", i)
		}
	}
	c := s.Counters()
	a, b := s.TenantCounters(0), s.TenantCounters(1)
	if a.FastAccesses+b.FastAccesses != c.FastAccesses ||
		a.SlowAccesses+b.SlowAccesses != c.SlowAccesses {
		t.Error("per-tenant accesses do not sum to machine counters")
	}
	if err := s.Machine().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	h := s.Health()
	if h.SamplingBeats == 0 || h.MigrationBeats == 0 {
		t.Errorf("background threads not beating: %+v", h)
	}
	// Each agent has a private telemetry set — fixed ArtMem metric names
	// would collide on a shared registry.
	if s.Agent(0).Telemetry() == s.Agent(1).Telemetry() {
		t.Error("tenant agents share a telemetry set")
	}
}

func TestMultiSystemTenantsReport(t *testing.T) {
	s := NewMultiSystem(testMultiConfig())
	driveMulti(t, s)

	rep := s.TenantsReport()
	if rep.ArbiterMode != "static" || !rep.AdmissionControl {
		t.Errorf("arbiter posture = %q/%v, want static/true", rep.ArbiterMode, rep.AdmissionControl)
	}
	if rep.FastCapacityPages != 32 {
		t.Errorf("fast capacity = %d, want 32", rep.FastCapacityPages)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("%d tenants, want 2", len(rep.Tenants))
	}
	if rep.Tenants[0].Name != "alpha" || rep.Tenants[1].Name != "beta" {
		t.Errorf("names = %q/%q", rep.Tenants[0].Name, rep.Tenants[1].Name)
	}
	quotas := 0
	for _, ts := range rep.Tenants {
		if ts.QuotaPages <= 0 {
			t.Errorf("%s: quota %d under static arbiter", ts.Name, ts.QuotaPages)
		}
		quotas += ts.QuotaPages
		if ts.HitRatio < 0 || ts.HitRatio > 1 {
			t.Errorf("%s: hit ratio %v", ts.Name, ts.HitRatio)
		}
		if ts.Decisions == 0 {
			t.Errorf("%s: agent made no decisions", ts.Name)
		}
	}
	if quotas != rep.FastCapacityPages {
		t.Errorf("quotas sum to %d, want %d", quotas, rep.FastCapacityPages)
	}
	// Weight-3 beta gets the larger share.
	if rep.Tenants[1].QuotaPages <= rep.Tenants[0].QuotaPages {
		t.Errorf("quota split %d/%d ignores weights 1/3",
			rep.Tenants[0].QuotaPages, rep.Tenants[1].QuotaPages)
	}
}

// TestTenantsEndpointSchemaPinned pins the /tenants JSON schema —
// cmd/artmon keys off these field names, so changing them is a
// deliberate act: extend this list.
func TestTenantsEndpointSchemaPinned(t *testing.T) {
	s := NewMultiSystem(testMultiConfig())
	driveMulti(t, s)
	srv := httptest.NewServer(s.ControlHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(body, &obj); err != nil {
		t.Fatal(err)
	}
	wantTop := []string{
		"arbiter_mode", "admission_control", "fast_capacity_pages",
		"capacity", "active_tenants", "rebalances", "registrations",
		"deregistrations", "crashes", "reclaim_rollbacks",
		"registrations_throttled", "tenants",
	}
	sort.Strings(wantTop)
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if strings.Join(keys, ",") != strings.Join(wantTop, ",") {
		t.Errorf("/tenants schema drifted:\n got  %v\n want %v", keys, wantTop)
	}

	var rows []map[string]json.RawMessage
	if err := json.Unmarshal(obj["tenants"], &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d tenant rows, want 2", len(rows))
	}
	wantRow := []string{
		"name", "slot", "state", "slo_class", "weight", "quota_pages",
		"fast_pages", "slow_pages", "fast_accesses", "slow_accesses",
		"hit_ratio", "promotions", "demotions", "admission_denials",
		"preemptions", "decisions", "threshold", "degraded",
	}
	sort.Strings(wantRow)
	for i, row := range rows {
		keys := make([]string, 0, len(row))
		for k := range row {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if strings.Join(keys, ",") != strings.Join(wantRow, ",") {
			t.Errorf("/tenants row %d schema drifted:\n got  %v\n want %v", i, keys, wantRow)
		}
	}
}

func TestMultiControlEndpoints(t *testing.T) {
	s := NewMultiSystem(testMultiConfig())
	driveMulti(t, s)
	srv := httptest.NewServer(s.ControlHandler())
	defer srv.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/stats"); code != 200 || !strings.Contains(body, "dram_ratio") {
		t.Errorf("/stats = %d %q", code, body)
	}
	// The shared registry carries both the machine series and the
	// tenant-labelled aggregates.
	if _, body := get("/metrics"); !strings.Contains(body, `artmem_tenant_fast_pages{tenant="alpha"}`) ||
		!strings.Contains(body, "artmem_tier_pages") {
		t.Error("/metrics missing tenant-labelled or machine series")
	}
	if code, _ := get("/metrics.json"); code != 200 {
		t.Errorf("/metrics.json = %d", code)
	}
	// Per-tenant traces are private: ?tenant selects the agent.
	if code, body := get("/trace?tenant=1&n=4"); code != 200 {
		t.Errorf("/trace?tenant=1 = %d %q", code, body)
	}
	for _, bad := range []string{"/trace?tenant=2", "/trace?tenant=-1", "/trace?tenant=x", "/trace?n=-1"} {
		if code, _ := get(bad); code != 400 {
			t.Errorf("%s = %d, want 400", bad, code)
		}
	}
}

func TestNewMultiSystemPanicsWithoutTenants(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero tenants")
		}
	}()
	NewMultiSystem(MultiSystemConfig{Machine: testSystemConfig().Machine})
}
