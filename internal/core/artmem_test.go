package core

import (
	"math"
	"testing"

	"artmem/internal/lru"
	"artmem/internal/memsim"
	"artmem/internal/rl"
)

// testMachine builds a small machine: 64 pages of 64KiB, fastPages in
// the fast tier, no CPU cache.
func testMachine(fastPages int) *memsim.Machine {
	cfg := memsim.DefaultConfig(64*64*1024, int64(fastPages)*64*1024, 64*1024)
	cfg.CacheLines = 0
	return memsim.NewMachine(cfg)
}

func TestDefaultsMatchPaper(t *testing.T) {
	a := New(Config{})
	if a.cfg.K != 10 {
		t.Errorf("K = %d, want 10", a.cfg.K)
	}
	if a.numStates() != 12 {
		t.Errorf("states = %d, want 12 (paper §5)", a.numStates())
	}
	if len(a.cfg.MigrationPages) != 9 {
		t.Errorf("migration actions = %d, want 9 (paper §5)", len(a.cfg.MigrationPages))
	}
	if a.cfg.MigrationPages[0] != 0 || a.cfg.MigrationPages[8] != 1024 {
		t.Errorf("migration ladder = %v", a.cfg.MigrationPages)
	}
	for i := 1; i < 8; i++ {
		if a.cfg.MigrationPages[i+1] != 2*a.cfg.MigrationPages[i] {
			t.Errorf("ladder not doubling at %d: %v", i, a.cfg.MigrationPages)
		}
	}
	if len(a.cfg.ThresholdDeltas) != 5 {
		t.Errorf("threshold actions = %d, want 5", len(a.cfg.ThresholdDeltas))
	}
	if math.Abs(a.cfg.Alpha-math.Exp(-2)) > 1e-12 ||
		math.Abs(a.cfg.Gamma-math.Exp(-1)) > 1e-12 ||
		a.cfg.Epsilon != 0.3 || a.cfg.Beta != 9 {
		t.Errorf("hyperparameters = %g/%g/%g/%g", a.cfg.Alpha, a.cfg.Gamma,
			a.cfg.Epsilon, a.cfg.Beta)
	}
}

func TestAttachInitializesPerAlgorithm1(t *testing.T) {
	a := New(Config{})
	a.Attach(testMachine(16))
	// Line 1: Q(k, 0) = 1, everything else 0.
	if got := a.qMig.Q(10, 0); got != 1 {
		t.Errorf("Q(k,0) = %g, want 1", got)
	}
	for s := 0; s < 12; s++ {
		for act := 0; act < 9; act++ {
			if s == 10 && act == 0 {
				continue
			}
			if a.qMig.Q(s, act) != 0 {
				t.Errorf("Q(%d,%d) = %g, want 0", s, act, a.qMig.Q(s, act))
			}
		}
	}
	// Line 2: τ₋₁ = k.
	if a.state != 10 {
		t.Errorf("initial state = %d, want k", a.state)
	}
	if a.threshold < a.cfg.MinThreshold {
		t.Errorf("initial threshold %d below floor %d", a.threshold, a.cfg.MinThreshold)
	}
}

func TestObserveStateEquation1(t *testing.T) {
	a := New(Config{})
	m := testMachine(16)
	a.Attach(m)
	// Feed the sampler directly: 7 fast events, 3 slow events → τ = ⌊7·10/10⌋ = 7.
	for i := 0; i < 7; i++ {
		a.sampler.OnMiss(0, memsim.Fast, false, 0)
	}
	for i := 0; i < 3; i++ {
		a.sampler.OnMiss(1, memsim.Slow, false, 0)
	}
	// SamplePeriod default is 5, so 10 events = 2 recorded samples; use a
	// period-1 sampler instead for exactness.
	a = New(Config{SamplePeriod: 1})
	a.Attach(testMachine(16))
	for i := 0; i < 7; i++ {
		a.sampler.OnMiss(0, memsim.Fast, false, 0)
	}
	for i := 0; i < 3; i++ {
		a.sampler.OnMiss(1, memsim.Slow, false, 0)
	}
	if got := a.observeState(); got != 7 {
		t.Errorf("state = %d, want 7", got)
	}
	// All fast → k.
	for i := 0; i < 5; i++ {
		a.sampler.OnMiss(0, memsim.Fast, false, 0)
	}
	if got := a.observeState(); got != 10 {
		t.Errorf("all-fast state = %d, want 10", got)
	}
	// No events → the dedicated k+1 state.
	if got := a.observeState(); got != 11 {
		t.Errorf("empty-window state = %d, want 11", got)
	}
}

func TestRewardEquation2(t *testing.T) {
	a := New(Config{})
	a.Attach(testMachine(16))
	// No migration in previous period: λ = 0, reward = τᵢ − β.
	a.migrated = false
	if got := a.reward(3, 7); got != 7-9 {
		t.Errorf("λ=0 reward = %g, want -2", got)
	}
	// Migration occurred: λ = 1, reward = τᵢ − β + (τᵢ − τᵢ₋₁).
	a.migrated = true
	if got := a.reward(3, 7); got != (7-9)+(7-3) {
		t.Errorf("λ=1 reward = %g, want 2", got)
	}
	// The no-sample state counts as fully cache-served (τ = k).
	a.migrated = false
	if got := a.reward(5, a.noSampleState()); got != 10-9 {
		t.Errorf("no-sample reward = %g, want 1", got)
	}
}

func TestThresholdFloorAndCeiling(t *testing.T) {
	a := New(Config{MinThreshold: 4})
	m := testMachine(16)
	a.Attach(m)
	a.threshold = 4
	// Drive ticks with no samples; threshold deltas explore but must
	// never cross the bounds.
	for i := 0; i < 200; i++ {
		a.Tick(int64(i))
		if a.threshold < 4 {
			t.Fatalf("threshold %d below floor", a.threshold)
		}
		if a.threshold > 4*16 {
			t.Fatalf("threshold %d above ceiling", a.threshold)
		}
	}
}

// buildHotColdMachine creates a machine where pages 0..15 fill the fast
// tier (cold) and pages 16..31 are hot in the slow tier, with ArtMem
// attached and fed enough samples that the hot pages qualify.
func buildHotColdMachine(t *testing.T, cfg Config) (*ArtMem, *memsim.Machine) {
	t.Helper()
	cfg.SamplePeriod = 1
	cfg.Epsilon = 0.0001 // near-greedy for determinism
	a := New(cfg)
	m := testMachine(16)
	a.Attach(m)
	ps := uint64(m.PageSize())
	// First-touch: fill fast with pages 0..15, then 16..31 go slow.
	for p := uint64(0); p < 32; p++ {
		m.Access(p*ps, false)
	}
	// Hot accesses to slow pages 16..31.
	for round := 0; round < 20; round++ {
		for p := uint64(16); p < 32; p++ {
			m.Access(p*ps, false)
		}
	}
	a.PumpSamples()
	return a, m
}

func TestMigratePromotesHotDemotesCold(t *testing.T) {
	a, m := buildHotColdMachine(t, Config{})
	before := m.Counters()
	n := a.migrate(8)
	if n != 8 {
		t.Fatalf("migrate(8) promoted %d", n)
	}
	c := m.Counters()
	if c.Promotions-before.Promotions != 8 {
		t.Errorf("promotions = %d", c.Promotions-before.Promotions)
	}
	// The fast tier was full, so 8 demotions must have made room.
	if c.Demotions-before.Demotions != 8 {
		t.Errorf("demotions = %d", c.Demotions-before.Demotions)
	}
	// Promoted pages land at the head of the fast active list (§4.3).
	head := a.lists.Head(lru.FastActive)
	if m.TierOf(head) != memsim.Fast {
		t.Errorf("fast-active head page is in %v", m.TierOf(head))
	}
	if a.hist.Count(head) == 0 {
		t.Errorf("fast-active head is not one of the hot pages")
	}
}

func TestMigrateZeroIsNoOp(t *testing.T) {
	a, m := buildHotColdMachine(t, Config{})
	before := m.Counters().Migrations
	if n := a.migrate(0); n != 0 {
		t.Errorf("migrate(0) promoted %d", n)
	}
	if m.Counters().Migrations != before {
		t.Errorf("migrate(0) migrated pages")
	}
}

func TestDisableSortingPreservesStatus(t *testing.T) {
	a, _ := buildHotColdMachine(t, Config{DisableSorting: true})
	// Take a page from the slow INACTIVE list and verify it lands on the
	// fast INACTIVE list after promotion.
	p := a.lists.Tail(lru.SlowInactive)
	if p == memsim.NoPage {
		t.Skip("no slow-inactive page in this configuration")
	}
	// Force-qualify and place it at the head of the active list to be a
	// candidate — instead call insertAfterMigration directly, which is
	// the behaviour under test.
	a.insertAfterMigration(p, memsim.Fast, false)
	if got := a.lists.ListOf(p); got != lru.FastInactive {
		t.Errorf("status-preserving insertion put page on %v", got)
	}
	// The aggressive default puts everything on the active head.
	b, _ := buildHotColdMachine(t, Config{})
	q := b.lists.Tail(lru.SlowInactive)
	if q == memsim.NoPage {
		t.Skip("no slow-inactive page")
	}
	b.insertAfterMigration(q, memsim.Fast, false)
	if got := b.lists.ListOf(q); got != lru.FastActive {
		t.Errorf("aggressive insertion put page on %v", got)
	}
}

func TestHeuristicModeUsesCapacityThreshold(t *testing.T) {
	a, m := buildHotColdMachine(t, Config{DisableRL: true})
	// Keep the hot set warm so it is still on the active list at tick
	// time (an idle working set ages to inactive, as it should).
	for p := uint64(16); p < 32; p++ {
		m.Access(p*uint64(m.PageSize()), false)
	}
	before := m.Counters().Promotions
	a.Tick(1)
	if a.qMig.Updates() != 0 {
		t.Errorf("heuristic mode performed RL updates")
	}
	if m.Counters().Promotions == before {
		t.Errorf("heuristic mode never promoted hot pages")
	}
}

func TestEndToEndTicksImproveRatio(t *testing.T) {
	a, m := buildHotColdMachine(t, Config{Seed: 7})
	ps := uint64(m.PageSize())
	// Run alternating access/tick rounds; the hot set (pages 16..31) must
	// end up in the fast tier.
	for round := 0; round < 60; round++ {
		for rep := 0; rep < 10; rep++ {
			for p := uint64(16); p < 32; p++ {
				m.Access(p*ps, false)
			}
		}
		a.Tick(m.Now())
	}
	inFast := 0
	for p := memsim.PageID(16); p < 32; p++ {
		if m.TierOf(p) == memsim.Fast {
			inFast++
		}
	}
	if inFast < 12 {
		t.Errorf("only %d of 16 hot pages promoted after 60 periods", inFast)
	}
}

func TestLatencyRewardRuns(t *testing.T) {
	a, m := buildHotColdMachine(t, Config{LatencyReward: true})
	for i := 0; i < 10; i++ {
		for p := uint64(16); p < 32; p++ {
			m.Access(p*uint64(m.PageSize()), false)
		}
		a.Tick(m.Now())
	}
	if a.Decisions() != 10 {
		t.Errorf("decisions = %d", a.Decisions())
	}
	if a.Name() != "ArtMem-latency" {
		t.Errorf("name = %q", a.Name())
	}
}

func TestVariantNames(t *testing.T) {
	cases := map[string]Config{
		"ArtMem":           {},
		"ArtMem-heuristic": {DisableRL: true},
		"ArtMem-nosort":    {DisableSorting: true},
		"ArtMem-base":      {DisableRL: true, DisableSorting: true},
		"ArtMem-sarsa":     {Algorithm: rl.SARSA},
	}
	for want, cfg := range cases {
		if got := New(cfg).Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestQTableTransplant(t *testing.T) {
	a := New(Config{})
	a.Attach(testMachine(16))
	mig, thr := a.QTables()
	mig.SetQ(3, 4, 0.5)
	b := New(Config{PretrainedMig: mig, PretrainedThr: thr})
	b.Attach(testMachine(16))
	bm, _ := b.QTables()
	if bm.Q(3, 4) != 0.5 {
		t.Errorf("pretrained Q not transplanted")
	}
	// LoadQTables after attach also works.
	c := New(Config{})
	c.Attach(testMachine(16))
	if err := c.LoadQTables(mig, thr); err != nil {
		t.Fatal(err)
	}
	cm, _ := c.QTables()
	if cm.Q(3, 4) != 0.5 {
		t.Errorf("LoadQTables did not copy")
	}
	// Mismatched dimensions rejected.
	other := rl.NewTable(rl.DefaultConfig(2, 2), nil)
	if err := c.LoadQTables(other, other); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestRLOverheadTracked(t *testing.T) {
	a, m := buildHotColdMachine(t, Config{})
	for i := 0; i < 5; i++ {
		a.Tick(m.Now())
	}
	if a.RLOverheadNs() <= 0 {
		t.Errorf("RL overhead not tracked")
	}
	// The paper promises ≤0.07% CPU: our per-tick charge must be tiny
	// compared to a 10ms interval.
	perTick := a.RLOverheadNs() / 5
	if perTick/1e7 > 0.0007 {
		t.Errorf("RL overhead %.5f%% of interval exceeds the paper's bound",
			100*perTick/1e7)
	}
}

func TestDynamicSamplingPeriodAdjustment(t *testing.T) {
	a := New(Config{SamplePeriod: 2, TargetSamplesPerPeriod: 10})
	m := testMachine(16)
	a.Attach(m)
	// Flood the sampler: far more than 2× the target pending samples.
	for i := 0; i < 200; i++ {
		a.sampler.OnMiss(memsim.PageID(i%32), memsim.Fast, false, 0)
	}
	a.PumpSamples()
	if got := a.sampler.Period(); got != 4 {
		t.Errorf("period after flood = %d, want doubled to 4", got)
	}
	// Starve it: period returns toward the configured baseline.
	a.PumpSamples()
	if got := a.sampler.Period(); got != 2 {
		t.Errorf("period after starvation = %d, want back to 2", got)
	}
	// Never exceeds 8× the baseline.
	for round := 0; round < 10; round++ {
		for i := 0; i < 3000; i++ {
			a.sampler.OnMiss(memsim.PageID(i%32), memsim.Fast, false, 0)
		}
		a.PumpSamples()
	}
	if got := a.sampler.Period(); got > 16 {
		t.Errorf("period %d exceeds the 8x bound", got)
	}
	// Disabled by default: period stays fixed.
	b := New(Config{SamplePeriod: 2})
	b.Attach(testMachine(16))
	for i := 0; i < 500; i++ {
		b.sampler.OnMiss(0, memsim.Fast, false, 0)
	}
	b.PumpSamples()
	if got := b.sampler.Period(); got != 2 {
		t.Errorf("auto-tuning ran while disabled: period %d", got)
	}
}
