package core

import (
	"testing"

	"artmem/internal/telemetry"
)

// The issue's overhead budget: the fully instrumented System (every
// pull metric registered, decision trace live) must stay within ~5% of
// the uninstrumented access hot path on AccessBatch. The default
// instrumentation is pull-based — scrape-time closures plus five plain
// per-class latency counters inside the machine — so the hot path pays
// no atomics. Compare:
//
//	go test -bench AccessBatch -benchtime 2s ./internal/core/
//
// BenchmarkAccessBatch            the instrumented default
// BenchmarkAccessBatchPushHist    worst case: atomic histogram per access
// BenchmarkAccessBatchPageTrace   page-lifecycle tracing at the default
//                                 1/64 sampling rate (must be in noise)
// BenchmarkAccessBatchPageTraceAll  tracing every page (rate 1)

func benchBatch() ([]uint64, []bool) {
	const n = 1024
	addrs := make([]uint64, n)
	writes := make([]bool, n)
	for i := range addrs {
		addrs[i] = uint64(i*4099*64*1024) % (64 * 64 * 1024)
		writes[i] = i%7 == 0
	}
	return addrs, writes
}

func BenchmarkAccessBatch(b *testing.B) {
	s := NewSystem(testSystemConfig())
	addrs, writes := benchBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AccessBatch(addrs, writes)
	}
}

func BenchmarkAccessBatchPageTrace(b *testing.B) {
	cfg := testSystemConfig()
	cfg.PageTraceSampleRate = telemetry.DefaultPageSampleRate
	s := NewSystem(cfg)
	addrs, writes := benchBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AccessBatch(addrs, writes)
	}
}

func BenchmarkAccessBatchPageTraceAll(b *testing.B) {
	cfg := testSystemConfig()
	cfg.PageTraceSampleRate = 1
	s := NewSystem(cfg)
	addrs, writes := benchBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AccessBatch(addrs, writes)
	}
}

func BenchmarkAccessBatchPushHistogram(b *testing.B) {
	s := NewSystem(testSystemConfig())
	h := s.Telemetry().Registry.Histogram(
		"bench_push_access_latency_ns", "", telemetry.DefBuckets)
	s.Machine().SetAccessHistogram(h)
	addrs, writes := benchBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AccessBatch(addrs, writes)
	}
}
