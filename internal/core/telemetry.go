package core

import (
	"sync"

	"artmem/internal/lru"
	"artmem/internal/memsim"
	"artmem/internal/rl"
	"artmem/internal/telemetry"
)

// This file registers the System's pull-based metrics: gauges and
// counters whose values live inside the machine, the sampler, the LRU
// lists, and the Q-tables — all state guarded by the system lock. Each
// registered closure takes s.mu itself, so a /metrics scrape reads a
// consistent snapshot without the caller holding the lock.
//
// Locking rule: scrape handlers (ControlHandler, artmemd) must never
// call WritePrometheus or Snapshot while holding s.mu — the pull
// closures would deadlock re-acquiring it.

// lockedRegistrar registers pull metrics whose read closures run under
// a shared mutex — the System (or MultiSystem) lock guarding the state
// they read. Factored out of System so both runtimes register the
// machine-level series with byte-identical names and help strings.
type lockedRegistrar struct {
	mu  *sync.Mutex
	reg *telemetry.Registry
}

// gauge registers a pull gauge whose read runs under the lock.
func (l lockedRegistrar) gauge(name, help string, read func() float64, labels ...telemetry.Label) {
	l.reg.GaugeFunc(name, help, func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return read()
	}, labels...)
}

// counter registers a pull counter whose read runs under the lock.
func (l lockedRegistrar) counter(name, help string, read func() uint64, labels ...telemetry.Label) {
	l.reg.CounterFunc(name, help, func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return float64(read())
	}, labels...)
}

// lockedGauge registers a pull gauge whose read runs under s.mu.
func (s *System) lockedGauge(name, help string, read func() float64, labels ...telemetry.Label) {
	lockedRegistrar{&s.mu, s.tel.Registry}.gauge(name, help, read, labels...)
}

// lockedCounter registers a pull counter whose read runs under s.mu.
func (s *System) lockedCounter(name, help string, read func() uint64, labels ...telemetry.Label) {
	lockedRegistrar{&s.mu, s.tel.Registry}.counter(name, help, read, labels...)
}

// registerMachineMetrics registers the machine-level series — tier
// occupancy, machine counters, virtual clock, latency histogram — onto
// l's registry. Shared by System and MultiSystem so single- and
// multi-tenant daemons expose the same machine surface.
func registerMachineMetrics(l lockedRegistrar, m *memsim.Machine) {
	tierLabel := [2]telemetry.Label{telemetry.L("tier", "fast"), telemetry.L("tier", "slow")}
	for _, t := range []memsim.TierID{memsim.Fast, memsim.Slow} {
		t := t
		l.gauge("artmem_tier_pages",
			"Pages currently resident per tier.",
			func() float64 { return float64(m.UsedPages(t)) }, tierLabel[t])
		l.gauge("artmem_tier_capacity_pages",
			"Tier capacity in pages.",
			func() float64 { return float64(m.CapacityPages(t)) }, tierLabel[t])
	}
	l.counter("artmem_accesses_total",
		"Cache-missing accesses served per tier.",
		func() uint64 { return m.Counters().FastAccesses }, tierLabel[memsim.Fast])
	l.counter("artmem_accesses_total", "",
		func() uint64 { return m.Counters().SlowAccesses }, tierLabel[memsim.Slow])
	l.counter("artmem_cache_hits_total",
		"Accesses absorbed by the CPU cache model.",
		func() uint64 { return m.Counters().CacheHits })
	l.counter("artmem_migrations_total",
		"Pages moved between tiers.",
		func() uint64 { return m.Counters().Migrations })
	l.counter("artmem_promotions_total",
		"Slow-to-fast page moves.",
		func() uint64 { return m.Counters().Promotions })
	l.counter("artmem_demotions_total",
		"Fast-to-slow page moves.",
		func() uint64 { return m.Counters().Demotions })
	l.counter("artmem_migrated_bytes_total",
		"Total bytes moved between tiers.",
		func() uint64 { return m.Counters().MigratedBytes })
	l.counter("artmem_migration_failures_total",
		"MovePage attempts that failed transiently (ErrMigrationBusy).",
		func() uint64 { return m.Counters().MigrationFailures })
	l.counter("artmem_numa_faults_total",
		"NUMA-hint faults taken.",
		func() uint64 { return m.Counters().Faults })
	l.gauge("artmem_virtual_clock_ns",
		"The machine's virtual clock.",
		func() float64 { return float64(m.Now()) })
	l.gauge("artmem_background_cpu_ns",
		"Virtual CPU time consumed by background work (sampling, RL, migration).",
		func() float64 { return m.BackgroundNs() })
	l.reg.HistogramFunc("artmem_access_latency_ns",
		"Distribution of per-access service latency (virtual ns).",
		func() telemetry.HistogramData {
			l.mu.Lock()
			defer l.mu.Unlock()
			return m.AccessLatencyData()
		})
}

// registerMetrics instruments every layer of the stack onto the
// registry. Called once from NewSystem, after the policy attached.
func (s *System) registerMetrics() {
	pol := s.pol

	// --- memsim: tier occupancy, machine counters, virtual clock ---
	registerMachineMetrics(lockedRegistrar{&s.mu, s.tel.Registry}, s.m)

	// --- pebs: sampling substrate ---
	s.lockedCounter("artmem_pebs_samples_total",
		"Samples taken by the PEBS model (including ones later dropped).",
		func() uint64 { return pol.sampler.Stats().Taken })
	s.lockedCounter("artmem_pebs_samples_dropped_total",
		"Samples lost to ring-buffer overflow.",
		func() uint64 { return pol.sampler.Stats().Dropped })
	s.lockedCounter("artmem_pebs_samples_injected_drops_total",
		"Samples lost entirely to an installed fault injector.",
		func() uint64 { return pol.sampler.Stats().InjectedDrops })
	s.lockedGauge("artmem_pebs_pending_samples",
		"Undrained samples in the ring buffer.",
		func() float64 { return float64(pol.sampler.Stats().Pending) })
	s.lockedGauge("artmem_pebs_sampling_period",
		"Current sampling period (one sample per N cache-missing accesses).",
		func() float64 { return float64(pol.sampler.Stats().Period) })

	// --- lru: page-sorting list sizes ---
	for _, e := range []struct {
		id   lru.ListID
		name string
	}{
		{lru.FastActive, "fast_active"},
		{lru.FastInactive, "fast_inactive"},
		{lru.SlowActive, "slow_active"},
		{lru.SlowInactive, "slow_inactive"},
	} {
		e := e
		s.lockedGauge("artmem_lru_pages",
			"Pages on each recency list.",
			func() float64 { return float64(pol.lists.Len(e.id)) },
			telemetry.L("list", e.name))
	}

	// --- rl: the agent's learning activity ---
	// The table pointers are stable after Attach (NewSystem registers
	// afterwards), so the closures capture them directly.
	for _, e := range []struct {
		name  string
		table *rl.Table
	}{
		{"migration", pol.qMig},
		{"threshold", pol.qThr},
	} {
		e := e
		s.lockedCounter("artmem_rl_updates_total",
			"Temporal-difference updates applied per Q-table.",
			func() uint64 { return e.table.Updates() }, telemetry.L("table", e.name))
		s.lockedCounter("artmem_rl_explorations_total",
			"ε-greedy selections that took the exploration branch, per Q-table.",
			func() uint64 { return e.table.Explorations() }, telemetry.L("table", e.name))
	}
	s.lockedGauge("artmem_rl_epsilon",
		"The agent's exploration probability.",
		func() float64 { return pol.qMig.Config().Epsilon })
	s.lockedGauge("artmem_threshold",
		"Current hotness threshold (per-page access count).",
		func() float64 { return float64(pol.threshold) })
	s.lockedGauge("artmem_state",
		"The agent's last observed RL state (fast-ratio level, K+1 = no samples).",
		func() float64 { return float64(pol.state) })
	s.lockedGauge("artmem_degraded",
		"1 while the agent runs the heuristic fallback, else 0.",
		func() float64 {
			if pol.degraded {
				return 1
			}
			return 0
		})

	// --- faultinject: delivered chaos, by class ---
	if inj := s.injector; inj != nil {
		s.lockedCounter("artmem_injected_faults_total",
			"Faults delivered by the injector, by class.",
			func() uint64 { return inj.Stats().MigrationFailures },
			telemetry.L("class", "migration_failure"))
		s.lockedCounter("artmem_injected_faults_total", "",
			func() uint64 { return inj.Stats().DroppedSamples },
			telemetry.L("class", "sample_drop"))
		s.lockedCounter("artmem_injected_faults_total", "",
			func() uint64 { return inj.Stats().OverflowedSamples },
			telemetry.L("class", "ring_overflow"))
		s.lockedCounter("artmem_injected_faults_total", "",
			func() uint64 { return inj.Stats().DegradedMigrations },
			telemetry.L("class", "bandwidth_degraded"))
	}
}
