package core

import (
	"errors"
	"testing"
	"time"

	"artmem/internal/memsim"
	"artmem/internal/tenancy"
)

// dynamicMultiConfig is testMultiConfig with spare slots: one initial
// tenant, capacity four.
func dynamicMultiConfig() MultiSystemConfig {
	mcfg := memsim.DefaultConfig(128*64*1024, 32*64*1024, 64*1024)
	mcfg.CacheLines = 0
	return MultiSystemConfig{
		Machine: mcfg,
		Tenants: []TenantConfig{
			{Name: "alpha", Weight: 1, Policy: Config{SamplePeriod: 1, Seed: 1}},
		},
		Capacity:          4,
		Arbiter:           tenancy.ArbiterConfig{Mode: tenancy.ModeStatic, Admission: true},
		SamplingInterval:  500 * time.Microsecond,
		MigrationInterval: time.Millisecond,
	}
}

func TestMultiSystemTenantChurn(t *testing.T) {
	s := NewMultiSystem(dynamicMultiConfig())
	ps := uint64(64 * 1024)

	slot, err := s.RegisterTenant(TenantConfig{
		Name: "burst", Class: tenancy.ClassLatency,
		Policy: Config{SamplePeriod: 1, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if slot != 1 {
		t.Fatalf("registered into slot %d, want 1", slot)
	}
	for i := 0; i < 20; i++ {
		s.Access(slot, (64+uint64(i))*ps, false)
		s.Access(0, uint64(i)*ps, false)
	}
	rep := s.TenantsReport()
	if rep.ActiveTenants != 2 || rep.Capacity != 4 {
		t.Fatalf("active/capacity = %d/%d, want 2/4", rep.ActiveTenants, rep.Capacity)
	}
	if got := rep.Tenants[1].SLOClass; got != "latency" {
		t.Fatalf("slo_class = %q, want latency", got)
	}

	// Graceful departure drains the pages, frees the slot, and leaves
	// the machine's accounting intact.
	if err := s.DeregisterTenant(slot, -1); err != nil {
		t.Fatal(err)
	}
	if s.Agent(slot) != nil {
		t.Fatal("departed slot still has an agent")
	}
	if got := s.TenantCounters(slot); got != (memsim.TenantCounters{}) {
		t.Fatalf("departed slot counters = %+v, want zero", got)
	}
	if err := s.Machine().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rep = s.TenantsReport()
	if rep.ActiveTenants != 1 || len(rep.Tenants) != 1 {
		t.Fatalf("after deregister: active = %d, rows = %d, want 1/1",
			rep.ActiveTenants, len(rep.Tenants))
	}

	// Deregistering twice is an error, not a panic.
	if err := s.DeregisterTenant(slot, -1); err == nil {
		t.Fatal("double deregister succeeded")
	}
	if err := s.DeregisterTenant(99, -1); err == nil {
		t.Fatal("deregister of bogus slot succeeded")
	}
}

func TestMultiSystemCheckpointWarmStart(t *testing.T) {
	s := NewMultiSystem(dynamicMultiConfig())
	ps := uint64(64 * 1024)
	slot, err := s.RegisterTenant(TenantConfig{
		Name: "worker", Policy: Config{SamplePeriod: 1, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive enough decision periods for the Q-tables to move off the
	// prior, without the background threads (deterministic).
	a := s.Agent(slot)
	for i := 0; i < 2000; i++ {
		s.Access(slot, (64+uint64(i%24))*ps, false)
	}
	s.mu.Lock()
	for i := 0; i < 10; i++ {
		a.PumpSamples()
		a.Tick(s.m.Now())
	}
	trained := flattenQ(a)
	s.mu.Unlock()

	if err := s.DeregisterTenant(slot, -1); err != nil {
		t.Fatal(err)
	}
	// Same name returns warm: the fresh agent's Q values match the
	// checkpoint, not the uniform prior.
	slot2, err := s.RegisterTenant(TenantConfig{
		Name: "worker", Policy: Config{SamplePeriod: 1, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm := flattenQ(s.Agent(slot2)); !equalQ(warm, trained) {
		t.Error("re-registered tenant did not warm-start from its checkpoint")
	}

	// A crash loses the learned state: no checkpoint update.
	s.mu.Lock()
	for i := 0; i < 10; i++ {
		s.Agent(slot2).PumpSamples()
		s.Agent(slot2).Tick(s.m.Now())
	}
	s.mu.Unlock()
	if err := s.CrashTenant(slot2, -1); err != nil {
		t.Fatal(err)
	}
	if got := s.Plane().Stats().Crashes; got != 1 {
		t.Fatalf("crashes = %d, want 1", got)
	}
	slot3, err := s.RegisterTenant(TenantConfig{
		Name: "worker", Policy: Config{SamplePeriod: 1, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if after := flattenQ(s.Agent(slot3)); !equalQ(after, trained) {
		t.Error("crash rolled the checkpoint forward; want the last graceful checkpoint")
	}
}

// flattenQ reads the agent's migration Q-table into one flat slice.
func flattenQ(a *ArtMem) []float64 {
	cfg := a.qMig.Config()
	out := make([]float64, 0, cfg.States*cfg.Actions)
	for st := 0; st < cfg.States; st++ {
		for ac := 0; ac < cfg.Actions; ac++ {
			out = append(out, a.qMig.Q(st, ac))
		}
	}
	return out
}

func equalQ(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMultiSystemRegisterBackpressure(t *testing.T) {
	cfg := dynamicMultiConfig()
	cfg.Arbiter.MaxArrivalsPerPeriod = 1
	s := NewMultiSystem(cfg)
	// Construction consumed one of the initial tokens; the plane starts
	// with capacity tokens, so three more registrations pass, then the
	// plane is full.
	for i := 0; i < 3; i++ {
		if _, err := s.RegisterTenant(TenantConfig{Policy: Config{SamplePeriod: 1}}); err != nil {
			t.Fatalf("registration %d: %v", i, err)
		}
	}
	if _, err := s.RegisterTenant(TenantConfig{}); !errors.Is(err, tenancy.ErrPlaneFull) {
		t.Fatalf("full plane = %v, want ErrPlaneFull", err)
	}
	s.DeregisterTenant(3, -1)
	// After a period begins, arrivals are throttled to one.
	s.mu.Lock()
	s.plane.BeginPeriod()
	s.mu.Unlock()
	if _, err := s.RegisterTenant(TenantConfig{Policy: Config{SamplePeriod: 1}}); err != nil {
		t.Fatal(err)
	}
	s.DeregisterTenant(3, -1)
	if _, err := s.RegisterTenant(TenantConfig{}); !errors.Is(err, tenancy.ErrRegistrationThrottled) {
		t.Fatalf("second arrival in period = %v, want throttled", err)
	}
}
