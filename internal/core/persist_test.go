package core

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestQTableSnapshotRoundTrip(t *testing.T) {
	a := New(Config{})
	a.Attach(testMachine(16))
	mig, thr := a.QTables()
	mig.SetQ(2, 3, 1.25)
	thr.SetQ(7, 1, -0.5)

	var buf bytes.Buffer
	if err := a.SaveQTables(&buf); err != nil {
		t.Fatal(err)
	}
	b := New(Config{})
	b.Attach(testMachine(16))
	if err := b.RestoreQTables(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	bm, bt := b.QTables()
	if bm.Q(2, 3) != 1.25 || bt.Q(7, 1) != -0.5 {
		t.Errorf("restored Q = %g/%g", bm.Q(2, 3), bt.Q(7, 1))
	}
	// The optimistic init survives too (it was saved).
	if bm.Q(10, 0) != 1 {
		t.Errorf("Q(k,0) = %g after restore", bm.Q(10, 0))
	}
}

func TestQTableSnapshotErrors(t *testing.T) {
	unattached := New(Config{})
	var buf bytes.Buffer
	if err := unattached.SaveQTables(&buf); err == nil {
		t.Error("save before attach accepted")
	}
	if err := unattached.RestoreQTables(bytes.NewReader(nil)); err == nil {
		t.Error("restore before attach accepted")
	}

	a := New(Config{})
	a.Attach(testMachine(16))
	if err := a.RestoreQTables(bytes.NewReader([]byte("garbage!"))); err == nil {
		t.Error("garbage snapshot accepted")
	}
	// Dimension mismatch: snapshot from a K=4 agent into a K=10 agent.
	small := New(Config{K: 4})
	small.Attach(testMachine(16))
	var sbuf bytes.Buffer
	if err := small.SaveQTables(&sbuf); err != nil {
		t.Fatal(err)
	}
	if err := a.RestoreQTables(bytes.NewReader(sbuf.Bytes())); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Truncation.
	if err := a.RestoreQTables(bytes.NewReader(sbuf.Bytes()[:10])); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestQTableSnapshotFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "qtables.bin")
	a := New(Config{})
	a.Attach(testMachine(16))
	mig, _ := a.QTables()
	mig.SetQ(1, 1, 9)
	if err := a.SaveQTablesFile(path); err != nil {
		t.Fatal(err)
	}
	b := New(Config{})
	b.Attach(testMachine(16))
	if err := b.RestoreQTablesFile(path); err != nil {
		t.Fatal(err)
	}
	bm, _ := b.QTables()
	if bm.Q(1, 1) != 9 {
		t.Errorf("file round trip lost Q values")
	}
	if err := b.RestoreQTablesFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("missing file accepted")
	}
}
