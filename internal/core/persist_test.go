package core

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"strings"
	"testing"
)

func TestQTableSnapshotRoundTrip(t *testing.T) {
	a := New(Config{})
	a.Attach(testMachine(16))
	mig, thr := a.QTables()
	mig.SetQ(2, 3, 1.25)
	thr.SetQ(7, 1, -0.5)

	var buf bytes.Buffer
	if err := a.SaveQTables(&buf); err != nil {
		t.Fatal(err)
	}
	b := New(Config{})
	b.Attach(testMachine(16))
	if err := b.RestoreQTables(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	bm, bt := b.QTables()
	if bm.Q(2, 3) != 1.25 || bt.Q(7, 1) != -0.5 {
		t.Errorf("restored Q = %g/%g", bm.Q(2, 3), bt.Q(7, 1))
	}
	// The optimistic init survives too (it was saved).
	if bm.Q(10, 0) != 1 {
		t.Errorf("Q(k,0) = %g after restore", bm.Q(10, 0))
	}
}

func TestQTableSnapshotErrors(t *testing.T) {
	unattached := New(Config{})
	var buf bytes.Buffer
	if err := unattached.SaveQTables(&buf); err == nil {
		t.Error("save before attach accepted")
	}
	if err := unattached.RestoreQTables(bytes.NewReader(nil)); err == nil {
		t.Error("restore before attach accepted")
	}

	a := New(Config{})
	a.Attach(testMachine(16))
	if err := a.RestoreQTables(bytes.NewReader([]byte("garbage!"))); err == nil {
		t.Error("garbage snapshot accepted")
	}
	// Dimension mismatch: snapshot from a K=4 agent into a K=10 agent.
	small := New(Config{K: 4})
	small.Attach(testMachine(16))
	var sbuf bytes.Buffer
	if err := small.SaveQTables(&sbuf); err != nil {
		t.Fatal(err)
	}
	if err := a.RestoreQTables(bytes.NewReader(sbuf.Bytes())); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Truncation.
	if err := a.RestoreQTables(bytes.NewReader(sbuf.Bytes()[:10])); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestQTableSnapshotFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "qtables.bin")
	a := New(Config{})
	a.Attach(testMachine(16))
	mig, _ := a.QTables()
	mig.SetQ(1, 1, 9)
	if err := a.SaveQTablesFile(path); err != nil {
		t.Fatal(err)
	}
	b := New(Config{})
	b.Attach(testMachine(16))
	if err := b.RestoreQTablesFile(path); err != nil {
		t.Fatal(err)
	}
	bm, _ := b.QTables()
	if bm.Q(1, 1) != 9 {
		t.Errorf("file round trip lost Q values")
	}
	if err := b.RestoreQTablesFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRestoreLeavesLiveTablesUntouchedOnCorruption(t *testing.T) {
	// Build a valid snapshot, then corrupt pieces of it and verify every
	// failed restore leaves the live tables exactly as they were.
	src := New(Config{})
	src.Attach(testMachine(16))
	sm, st := src.QTables()
	sm.SetQ(2, 3, 1.25)
	st.SetQ(7, 1, -0.5)
	var buf bytes.Buffer
	if err := src.SaveQTables(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	newAgent := func() *ArtMem {
		a := New(Config{})
		a.Attach(testMachine(16))
		am, at := a.QTables()
		am.SetQ(5, 5, 42)
		at.SetQ(3, 2, -7)
		return a
	}
	checkUntouched := func(t *testing.T, a *ArtMem) {
		t.Helper()
		am, at := a.QTables()
		if am.Q(5, 5) != 42 || at.Q(3, 2) != -7 {
			t.Errorf("live tables modified by failed restore: %g/%g",
				am.Q(5, 5), at.Q(3, 2))
		}
		if am.Q(2, 3) == 1.25 {
			t.Error("snapshot values leaked into live tables")
		}
	}

	t.Run("truncated-mid-second-table", func(t *testing.T) {
		a := newAgent()
		err := a.RestoreQTables(bytes.NewReader(good[:len(good)-4]))
		if err == nil {
			t.Fatal("truncated snapshot accepted")
		}
		if !strings.Contains(err.Error(), "table 1") {
			t.Errorf("error not descriptive: %v", err)
		}
		checkUntouched(t, a)
	})

	t.Run("corrupt-second-table-magic", func(t *testing.T) {
		a := newAgent()
		// Layout: 4B snapshot magic, then per table: 4B length + body.
		firstLen := binary.LittleEndian.Uint32(good[4:8])
		secondBody := 8 + int(firstLen) + 4 // first byte of table 2's body
		bad := append([]byte(nil), good...)
		bad[secondBody] ^= 0xff
		err := a.RestoreQTables(bytes.NewReader(bad))
		if err == nil {
			t.Fatal("corrupt second table accepted")
		}
		checkUntouched(t, a)
	})

	t.Run("corrupt-first-table-magic", func(t *testing.T) {
		a := newAgent()
		bad := append([]byte(nil), good...)
		bad[8] ^= 0xff
		err := a.RestoreQTables(bytes.NewReader(bad))
		if err == nil {
			t.Fatal("corrupt first table accepted")
		}
		if !strings.Contains(err.Error(), "table 0") {
			t.Errorf("error not descriptive: %v", err)
		}
		checkUntouched(t, a)
	})

	t.Run("implausible-length", func(t *testing.T) {
		a := newAgent()
		bad := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(bad[4:8], 1<<24)
		err := a.RestoreQTables(bytes.NewReader(bad))
		if err == nil {
			t.Fatal("implausible length accepted")
		}
		checkUntouched(t, a)
	})

	t.Run("good-snapshot-still-restores", func(t *testing.T) {
		a := newAgent()
		if err := a.RestoreQTables(bytes.NewReader(good)); err != nil {
			t.Fatal(err)
		}
		am, at := a.QTables()
		if am.Q(2, 3) != 1.25 || at.Q(7, 1) != -0.5 {
			t.Error("valid restore did not apply")
		}
	})
}
