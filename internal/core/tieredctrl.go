package core

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"

	"artmem/internal/memsim"
	"artmem/internal/telemetry"
)

// TierStatus is one tier's row in the /tiers document.
type TierStatus struct {
	Index       int    `json:"index"`
	Name        string `json:"name"`
	UsedPages   int    `json:"used_pages"`
	Capacity    int    `json:"capacity_pages"`
	ShadowPages int    `json:"shadow_pages"`
	Accesses    uint64 `json:"accesses"`
}

// BoundaryStatus is one tier boundary's row in the /tiers document:
// the boundary's migration totals plus its agent's RL state.
type BoundaryStatus struct {
	Boundary       int    `json:"boundary"`
	Upper          string `json:"upper"`
	Lower          string `json:"lower"`
	Promotions     uint64 `json:"promotions"`
	Demotions      uint64 `json:"demotions"`
	ShadowDiscards uint64 `json:"shadow_discards"`
	Threshold      uint32 `json:"threshold"`
	Decisions      uint64 `json:"decisions"`
	Degraded       bool   `json:"degraded"`
}

// TiersReport is the JSON document served at /tiers. The field set is
// schema-pinned: artmon renders its per-tier panel from it and degrades
// gracefully when the endpoint is absent (old two-tier daemons).
type TiersReport struct {
	VirtualNs         int64            `json:"virtual_ns"`
	NonExclusive      bool             `json:"non_exclusive"`
	Tiers             []TierStatus     `json:"tiers"`
	Boundaries        []BoundaryStatus `json:"boundaries"`
	ShadowInvalidates uint64           `json:"shadow_invalidates"`
	ShadowReclaims    uint64           `json:"shadow_reclaims"`
}

// TiersStatus assembles the /tiers document under the system lock.
func (s *TieredSystem) TiersStatus() TiersReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.m.Counters()
	st := TiersReport{
		VirtualNs:         s.m.Now(),
		NonExclusive:      s.m.Config().NonExclusive,
		ShadowInvalidates: c.ShadowInvalidates,
		ShadowReclaims:    c.ShadowReclaims,
	}
	for t := 0; t < s.m.Tiers(); t++ {
		tid := memsim.TierID(t)
		st.Tiers = append(st.Tiers, TierStatus{
			Index:       t,
			Name:        s.m.TierName(tid),
			UsedPages:   s.m.UsedPages(tid),
			Capacity:    s.m.CapacityPages(tid),
			ShadowPages: s.m.ShadowPages(tid),
			Accesses:    s.m.TierAccesses(tid),
		})
	}
	for b := range s.agents {
		bs := s.m.BoundaryStatsAt(b)
		a := s.agents[b]
		st.Boundaries = append(st.Boundaries, BoundaryStatus{
			Boundary:       b,
			Upper:          s.m.TierName(memsim.TierID(b)),
			Lower:          s.m.TierName(memsim.TierID(b + 1)),
			Promotions:     bs.Promotions,
			Demotions:      bs.Demotions,
			ShadowDiscards: bs.ShadowDiscards,
			Threshold:      a.threshold,
			Decisions:      a.Decisions(),
			Degraded:       a.degraded,
		})
	}
	return st
}

// ControlHandler returns the HTTP surface of the N-tier runtime:
//
//	GET /healthz       ok/degraded/draining liveness (shared schema)
//	GET /tiers         per-tier occupancy and per-boundary agents, JSON
//	GET /stats         machine counters as JSON
//	GET /metrics       the registry in Prometheus text format
//	GET /metrics.json  the registry as a JSON snapshot
//	GET /trace         the boundary agents' decision traces, merged on
//	                   the virtual clock, as JSONL (?n= caps events)
//
// The per-boundary agents' interaction channels (hit ratio, actions,
// thresholds) are visible through /tiers rather than the two-tier
// pseudo-file endpoints, which assume a single agent.
func (s *TieredSystem) ControlHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", healthzHandler(s))
	mux.HandleFunc("GET /tiers", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.TiersStatus())
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		c := s.m.Counters()
		now := s.m.Now()
		s.mu.Unlock()
		h := s.Health()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			VirtualNs         int64   `json:"virtual_ns"`
			FastAccesses      uint64  `json:"fast_accesses"`
			SlowAccesses      uint64  `json:"slow_accesses"`
			CacheHits         uint64  `json:"cache_hits"`
			DRAMRatio         float64 `json:"dram_ratio"`
			Migrations        uint64  `json:"migrations"`
			Promotions        uint64  `json:"promotions"`
			Demotions         uint64  `json:"demotions"`
			MigratedBytes     uint64  `json:"migrated_bytes"`
			ShadowDiscards    uint64  `json:"shadow_discards"`
			ShadowInvalidates uint64  `json:"shadow_invalidates"`
			ShadowReclaims    uint64  `json:"shadow_reclaims"`
			Degraded          bool    `json:"degraded"`
			WatchdogStalls    uint64  `json:"watchdog_stalls"`
			Panics            uint64  `json:"panics"`
		}{
			VirtualNs:         now,
			FastAccesses:      c.FastAccesses,
			SlowAccesses:      c.SlowAccesses,
			CacheHits:         c.CacheHits,
			DRAMRatio:         c.DRAMRatio(),
			Migrations:        c.Migrations,
			Promotions:        c.Promotions,
			Demotions:         c.Demotions,
			MigratedBytes:     c.MigratedBytes,
			ShadowDiscards:    c.ShadowDiscards,
			ShadowInvalidates: c.ShadowInvalidates,
			ShadowReclaims:    c.ShadowReclaims,
			Degraded:          h.Degraded,
			WatchdogStalls:    h.SamplingStalls + h.MigrationStalls,
			Panics:            h.Panics,
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// Pull closures lock s.mu themselves; the handler must not hold it.
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.tel.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.tel.Registry.Snapshot())
	})
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, r *http.Request) {
		n := 0 // everything retained
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		// Each boundary agent records into its private trace ring; the
		// drain merges them on the shared virtual clock. Per-ring seqs
		// only break ties, so cross-boundary ordering is by TimeNs.
		var evs []telemetry.Event
		for _, at := range s.agentTels {
			evs = append(evs, at.Trace.Events(n)...)
		}
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].TimeNs != evs[j].TimeNs {
				return evs[i].TimeNs < evs[j].TimeNs
			}
			return evs[i].Seq < evs[j].Seq
		})
		if n > 0 && len(evs) > n {
			evs = evs[len(evs)-n:]
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
	})
	return mux
}
