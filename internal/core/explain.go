package core

import "artmem/internal/rl"

// RL explainability: the paper argues ArtMem's advantage comes from
// *adaptive* migration — the agent learning different quotas and
// thresholds for different access-ratio states (§6.3). The QTableReport
// makes that learning inspectable: both Q-tables with their per-state
// visit counts, exploration draws, greedy actions, and reward
// attribution, anchored to the agent's current operating point. It is
// served as JSON by /qtable and rendered as a heatmap by artmemviz.

// QTableReport is the explainability payload served by /qtable.
type QTableReport struct {
	// Policy is the agent variant name (ArtMem, ArtMem-sarsa, ...).
	Policy string `json:"policy"`
	// K is the access-ratio discretization; states run 0..K plus the
	// dedicated no-sample state at index NoSampleState.
	K             int `json:"k"`
	States        int `json:"states"`
	NoSampleState int `json:"no_sample_state"`
	// CurrentState is τ of the last completed period — the row of the
	// heatmaps the agent is acting from right now.
	CurrentState int `json:"current_state"`
	// Threshold is the current hotness threshold; MinThreshold its
	// floor; Beta the reward target in state units.
	Threshold    uint32  `json:"current_threshold"`
	MinThreshold uint32  `json:"min_threshold"`
	Beta         float64 `json:"beta"`
	// Degraded reports the heuristic fallback; while set, the Q-tables
	// are not steering migration.
	Degraded  bool   `json:"degraded"`
	Decisions uint64 `json:"decisions"`
	// MigrationPages and ThresholdDeltas label the action columns of
	// the two tables.
	MigrationPages  []int `json:"migration_pages"`
	ThresholdDeltas []int `json:"threshold_deltas"`
	// Migration is the migration-number Q-table, Threshold the
	// threshold-delta one.
	Migration      rl.Snapshot `json:"migration"`
	ThresholdTable rl.Snapshot `json:"threshold"`
}

// QTableReport captures the agent's current explainability view. The
// caller must serialize against a running System (the online runtime
// calls it under its lock); the snapshots share no memory with the
// live tables.
func (a *ArtMem) QTableReport() QTableReport {
	return QTableReport{
		Policy:          a.Name(),
		K:               a.cfg.K,
		States:          a.numStates(),
		NoSampleState:   a.noSampleState(),
		CurrentState:    a.state,
		Threshold:       a.threshold,
		MinThreshold:    a.cfg.MinThreshold,
		Beta:            a.cfg.Beta,
		Degraded:        a.degraded,
		Decisions:       a.ctDecisions.Value(),
		MigrationPages:  append([]int(nil), a.cfg.MigrationPages...),
		ThresholdDeltas: append([]int(nil), a.cfg.ThresholdDeltas...),
		Migration:       a.qMig.Snapshot(),
		ThresholdTable:  a.qThr.Snapshot(),
	}
}
