package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// This file exposes the paper's §5 "interaction channels for environment
// and agent information" over HTTP. The kernel prototype adds pseudo-
// files under the memory cgroup directory — memory.hit_ratio_show to
// read the sampled access ratio, memory.action_show and
// memory.threshold_show to observe the agent's decisions — "allowing the
// reinforcement learning algorithm to be implemented in user space,
// facilitating algorithm parameter adjustments and comparative
// experiments". The simulator's analogue serves the same three files
// (plus machine counters) as HTTP endpoints on a System.

// ControlHandler returns an http.Handler exposing the system's
// interaction channels:
//
//	GET /memory.hit_ratio_show   sampled fast/slow window counts & ratio
//	GET /memory.action_show      the agent's last migration action
//	GET /memory.threshold_show   the current hotness threshold
//	GET /stats                   machine counters as JSON
//	GET /metrics                 the full registry in Prometheus text format
//	GET /trace                   the decision trace as JSONL (?n= caps events)
//	GET /pagetrace               the page-lifecycle journal as JSONL
//	                             (?page= filters one page, ?n= caps events)
//	GET /qtable                  both Q-tables with learning history as JSON
//	GET /healthz                 ok/degraded/draining liveness for balancers
//	                             (JSON; draining answers 503)
func (s *System) ControlHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", healthzHandler(s))
	mux.HandleFunc("GET /memory.hit_ratio_show", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		fast, slow := s.pol.sampler.PeekWindowCounts()
		state := s.pol.state
		s.mu.Unlock()
		// The kernel file prints plain numbers; keep that spirit.
		fmt.Fprintf(w, "fast %d\nslow %d\nstate %d\n", fast, slow, state)
	})
	mux.HandleFunc("GET /memory.action_show", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		pages := s.pol.cfg.MigrationPages[s.pol.actMig]
		migrated := s.pol.lastMigrated
		s.mu.Unlock()
		decisions := s.pol.Decisions()
		fmt.Fprintf(w, "migration_pages %d\nlast_migrated %d\ndecisions %d\n",
			pages, migrated, decisions)
	})
	mux.HandleFunc("GET /memory.threshold_show", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		thr := s.pol.threshold
		delta := s.pol.cfg.ThresholdDeltas[s.pol.actThr]
		s.mu.Unlock()
		fmt.Fprintf(w, "threshold %d\nlast_delta %d\n", thr, delta)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		c := s.m.Counters()
		now := s.m.Now()
		degraded := s.pol.degraded
		sampleDrops := s.pol.sampler.Dropped() + s.pol.sampler.InjectedDrops()
		s.mu.Unlock()
		fs := s.pol.FaultStats()
		h := s.Health()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			VirtualNs     int64   `json:"virtual_ns"`
			FastAccesses  uint64  `json:"fast_accesses"`
			SlowAccesses  uint64  `json:"slow_accesses"`
			CacheHits     uint64  `json:"cache_hits"`
			DRAMRatio     float64 `json:"dram_ratio"`
			Migrations    uint64  `json:"migrations"`
			Promotions    uint64  `json:"promotions"`
			Demotions     uint64  `json:"demotions"`
			MigratedBytes uint64  `json:"migrated_bytes"`
			// Resilience: fault, retry, and degraded-mode accounting.
			Degraded           bool   `json:"degraded"`
			DegradedTicks      uint64 `json:"degraded_ticks"`
			DegradedEntries    uint64 `json:"degraded_entries"`
			MigrationFailures  uint64 `json:"migration_failures"`
			MigrationRetries   uint64 `json:"migration_retries"`
			MigrationSkips     uint64 `json:"migration_skips"`
			MigrationRollbacks uint64 `json:"migration_rollbacks"`
			TierFullStops      uint64 `json:"tier_full_stops"`
			SampleDrops        uint64 `json:"sample_drops"`
			WatchdogStalls     uint64 `json:"watchdog_stalls"`
			Panics             uint64 `json:"panics"`
		}{
			VirtualNs:          now,
			FastAccesses:       c.FastAccesses,
			SlowAccesses:       c.SlowAccesses,
			CacheHits:          c.CacheHits,
			DRAMRatio:          c.DRAMRatio(),
			Migrations:         c.Migrations,
			Promotions:         c.Promotions,
			Demotions:          c.Demotions,
			MigratedBytes:      c.MigratedBytes,
			Degraded:           degraded,
			DegradedTicks:      fs.DegradedTicks,
			DegradedEntries:    fs.DegradedEntries,
			MigrationFailures:  c.MigrationFailures,
			MigrationRetries:   fs.Retries,
			MigrationSkips:     fs.SkippedPages,
			MigrationRollbacks: fs.Rollbacks,
			TierFullStops:      fs.TierFullStops,
			SampleDrops:        sampleDrops,
			WatchdogStalls:     h.SamplingStalls + h.MigrationStalls,
			Panics:             h.Panics,
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// The registry's pull closures lock s.mu themselves; this handler
		// must not hold it (see internal/core/telemetry.go).
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.tel.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.tel.Registry.Snapshot())
	})
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, r *http.Request) {
		n := 0 // everything retained
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		s.tel.Trace.WriteJSONL(w, n)
	})
	mux.HandleFunc("GET /pagetrace", func(w http.ResponseWriter, r *http.Request) {
		// The page trace has its own lock; serving it must not take s.mu
		// (the lifecycle hooks append while the policy holds it).
		pt := s.tel.PageTrace
		if pt == nil {
			http.Error(w, "page tracing disabled (start with a page-trace sample rate)",
				http.StatusNotFound)
			return
		}
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		page := int64(-1)
		if q := r.URL.Query().Get("page"); q != "" {
			v, err := strconv.ParseInt(q, 10, 64)
			if err != nil || v < 0 {
				http.Error(w, "bad page", http.StatusBadRequest)
				return
			}
			page = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		pt.WriteJSONL(w, n, page)
	})
	mux.HandleFunc("GET /qtable", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		rep := s.pol.QTableReport()
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
	})
	return mux
}
