// Package core implements ArtMem, the paper's contribution: a
// reinforcement-learning-enabled tiered memory manager that adaptively
// chooses *how many* pages to migrate and *how hot* a page must be to
// qualify, from real-time feedback on the fast-tier access ratio.
//
// The implementation follows §4 and Algorithm 1 of the paper:
//
//   - State: the PEBS-sampled fast-tier access ratio, discretized into
//     k+1 levels (Equation 1), plus a dedicated state for "no events
//     sampled" — k+2 states total.
//   - Actions: two Q-tables, one selecting the migration number from
//     {0, 16MB, 32MB, …, 2048MB} (paper §5, expressed in pages here so
//     scaled page sizes carry over), one adjusting the hotness threshold
//     by {−8, −4, 0, +4, +8} with a 16-access floor.
//   - Reward: τᵢ − β + λ(τᵢ − τᵢ₋₁)  (Equation 2), where λ is 1 only if
//     the previous period migrated pages.
//   - Page sorting: samples refresh recency in per-tier active/inactive
//     LRU lists; demotion victims come from the fast inactive tail,
//     promotion candidates from the slow active head, and promoted pages
//     are inserted at the *head of the fast active list* regardless of
//     prior status (§4.3's aggressive insertion).
//   - EMA frequency: per-page counts in base-2 bins with periodic
//     cooling; the threshold resets to the capacity-derived value after
//     each cooling and is refined by the RL agent in between.
//
// Config toggles reproduce the paper's ablations: DisableRL (heuristic
// thresholds, fixed migration number), DisableSorting (conservative
// status-preserving insertion), and LatencyReward (§6.3.4).
//
// Two runtimes wrap the agent for online use. System runs one agent
// against a plain memsim.Machine with real sampling/migration/watchdog
// goroutines (the §4.4 ksampled/kmigrated architecture). ShardedSystem
// (sharded.go, DESIGN.md §12) runs one agent per shard of a
// memsim.ShardedMachine and periodically rebalances fast-tier capacity
// between shards from observed demand, so concurrent AccessBatch
// callers scale across cores while each agent's control loop stays the
// single-threaded algorithm above.
package core

import (
	"errors"
	"fmt"

	"artmem/internal/dist"
	"artmem/internal/ema"
	"artmem/internal/lru"
	"artmem/internal/memsim"
	"artmem/internal/pebs"
	"artmem/internal/rl"
	"artmem/internal/telemetry"
)

// Config parameterizes ArtMem. The zero value is completed to the
// paper's tuned configuration by defaults().
type Config struct {
	// K is the access-ratio discretization: states 0..K plus the
	// no-sample state. The paper uses K = 10 (12 states total, §5).
	K int
	// Beta is the desired fast-tier access ratio in state units; the
	// paper finds 8–10 optimal and we default to 9 (§6.3.7).
	Beta float64
	// Alpha, Gamma, Epsilon are the RL hyperparameters; zero values use
	// the paper's e⁻², e⁻¹, 0.3.
	Alpha, Gamma, Epsilon float64
	// Algorithm selects Q-learning (default) or SARSA (§6.3.5).
	Algorithm rl.Algorithm
	// TickInterval is the RL decision + migration period in virtual ns.
	// The paper uses 10s against minutes-long runs; scaled to the
	// simulator's second-long runs this is 10ms (see DESIGN.md).
	TickInterval int64
	// SamplePeriod and CoolingSamples configure PEBS sampling and EMA
	// cooling (paper: 200 and 2M; scaled defaults 5 and 500000).
	SamplePeriod   uint64
	CoolingSamples uint64
	// TargetSamplesPerPeriod, when non-zero, enables the paper's dynamic
	// sampling-period adjustment (§6.4: "We dynamically adjust the
	// sampling period to control the sampling overhead"): the period is
	// raised when a decision interval drains more than twice the target
	// and lowered when it drains less than half, within
	// [SamplePeriod, 8×SamplePeriod].
	TargetSamplesPerPeriod int
	// MinThreshold is the hotness-threshold floor in per-page access
	// counts (paper §5: 16).
	MinThreshold uint32
	// MigrationPages are the selectable migration sizes in pages. Nil
	// uses the paper's ladder {0, 8, 16, …, 1024} (16MB…2048MB of 2MB
	// pages).
	MigrationPages []int
	// ThresholdDeltas are the selectable threshold adjustments. Nil uses
	// the paper's {−8, −4, 0, +4, +8}.
	ThresholdDeltas []int
	// Seed drives exploration.
	Seed uint64

	// PretrainedMig and PretrainedThr, when non-nil, initialize the two
	// Q-tables from previously trained ones (dimensions must match). The
	// paper primes its agent the same way: "ArtMem runs the Liblinear
	// program several times to initialize the RL algorithm, primarily to
	// obtain a Q-table with learning experiences" (§6.2).
	PretrainedMig *rl.Table
	PretrainedThr *rl.Table

	// DisableRL replaces the agent with the heuristic: capacity-derived
	// threshold and a fixed mid-ladder migration number (ablation §6.3.1,
	// "heuristic adjustment strategies" in Figure 9).
	DisableRL bool
	// DisableSorting turns off the page-sorting component (ablation
	// §6.3.1): sampled accesses no longer refresh list recency, and
	// migrated pages keep their activity status (the conservative
	// insertion of prior systems) instead of landing at the head of the
	// fast active list.
	DisableSorting bool
	// LatencyReward switches the reward to the approximated
	// memory-latency signal (§6.3.4).
	LatencyReward bool

	// MigrationRetries caps per-page retries when MovePage fails
	// transiently (memsim.ErrMigrationBusy). 0 uses the default (3);
	// negative disables retries (fail fast, skip the page).
	MigrationRetries int
	// MigrationBackoffNs is the background CPU cost charged for the
	// first retry of a busy page; each further retry doubles it, capped
	// at 8x. 0 uses the default (2000ns).
	MigrationBackoffNs float64
	// DegradeAfter is the number of consecutive empty sampling windows
	// after which the agent falls back to the heuristic
	// capacity-threshold policy (graceful degradation: a dry signal must
	// not leave migration steered by a stale Q-state). RL re-engages on
	// the first window with samples. 0 uses the default (8); negative
	// disables degradation.
	DegradeAfter int

	// Debug, when non-nil, receives a per-tick trace line (printf-style).
	Debug func(format string, args ...any)
}

func (c *Config) defaults() {
	if c.K == 0 {
		c.K = 10
	}
	if c.Beta == 0 {
		c.Beta = 9
	}
	if c.Alpha == 0 {
		c.Alpha = rl.DefaultAlpha
	}
	if c.Gamma == 0 {
		c.Gamma = rl.DefaultGamma
	}
	if c.Epsilon == 0 {
		c.Epsilon = rl.DefaultEpsilon
	}
	if c.TickInterval == 0 {
		c.TickInterval = 10_000_000 // 10ms, the scaled 10s interval
	}
	if c.SamplePeriod == 0 {
		c.SamplePeriod = 5
	}
	if c.CoolingSamples == 0 {
		c.CoolingSamples = 500_000
	}
	if c.MinThreshold == 0 {
		// The paper's floor is 16 accesses per 2MB page. Scaled pages
		// aggregate far fewer accesses each, so the floor scales down
		// with them (see DESIGN.md on count scaling).
		c.MinThreshold = 2
	}
	if c.MigrationPages == nil {
		// 0 plus eight doublings from 8 pages (16MB of 2MB pages) to
		// 1024 pages (2048MB) — nine actions (§5).
		c.MigrationPages = []int{0, 8, 16, 32, 64, 128, 256, 512, 1024}
	}
	if c.ThresholdDeltas == nil {
		// The paper uses {−8, −4, 0, +4, +8} against its 16-access floor;
		// scaled to the simulator's floor of 2 this is {−2, −1, 0, +1, +2}.
		c.ThresholdDeltas = []int{-2, -1, 0, 1, 2}
	}
	if c.MigrationRetries == 0 {
		c.MigrationRetries = 3
	}
	if c.MigrationBackoffNs == 0 {
		c.MigrationBackoffNs = 2000
	}
	if c.DegradeAfter == 0 {
		c.DegradeAfter = 8
	}
}

// ArtMem is the policy. It implements the same Policy contract as the
// baselines in internal/policies (Name/Attach/Interval/Tick).
type ArtMem struct {
	cfg Config

	m       memsim.Env
	lists   *lru.PageLists
	sampler *pebs.Sampler
	hist    *ema.Histogram

	qMig *rl.Table // migration-number Q-table
	qThr *rl.Table // threshold-delta Q-table

	threshold uint32

	state     int // τ of the previous period
	actMig    int // actions taken in the previous period
	actThr    int
	migrated  bool // λ: did the previous period migrate?
	latEMA    float64
	scanQuota int

	// Degraded-mode state machine: consecutive empty sampling windows
	// trip the fallback to the heuristic policy; the first window with
	// samples re-engages RL.
	noSampleStreak int
	degraded       bool

	// Telemetry. The registry counters below replace the ad-hoc stat
	// fields this struct used to carry: they are atomic (safe to read
	// from the online runtime's control endpoints without the system
	// lock), they appear on /metrics for free, and FaultStats() snapshots
	// them for the existing experiment surface. tel is created lazily at
	// Attach when SetTelemetry was not called, so standalone harness runs
	// get a decision trace too.
	tel *telemetry.Set

	ctDecisions     *telemetry.Counter // RL periods elapsed
	ctRetries       *telemetry.Counter // MovePage retries after busy
	ctSkips         *telemetry.Counter // candidates abandoned
	ctRollbacks     *telemetry.Counter // demotions undone
	ctTierFullStops *telemetry.Counter // periods cut short, slow tier full
	ctDegradedTicks *telemetry.Counter // periods in heuristic fallback
	ctDegradedIn    *telemetry.Counter // transitions into fallback
	ctCoolings      *telemetry.Counter // EMA cooling threshold resets

	// Remaining per-period scratch surfaced for experiments and the
	// decision trace.
	rlNanos      float64
	lastWinFast  uint64
	lastWinSlow  uint64
	lastMigrated int
	// Per-period migration outcome, reset by migrate: candidates
	// attempted, permanently failed (skipped), and rolled back.
	lastAttempted int
	lastFailed    int
	lastRolled    int
}

// FaultStats counts the agent's resilience activity: how migration
// failures were absorbed and how much time was spent in degraded mode.
type FaultStats struct {
	// Retries is the number of MovePage retries after transient failures.
	Retries uint64
	// SkippedPages is the number of migration candidates abandoned after
	// retries were exhausted (skip-and-continue).
	SkippedPages uint64
	// Rollbacks is the number of demotions undone because the promotion
	// they made room for failed permanently (Nomad-style copy-then-commit).
	Rollbacks uint64
	// TierFullStops counts migration periods cut short because the slow
	// tier had no capacity left to demote into.
	TierFullStops uint64
	// DegradedTicks is the number of decision periods spent in the
	// heuristic fallback; DegradedEntries counts transitions into it.
	DegradedTicks   uint64
	DegradedEntries uint64
}

// New returns an ArtMem policy with the given configuration.
func New(cfg Config) *ArtMem {
	cfg.defaults()
	return &ArtMem{cfg: cfg}
}

// Name implements the policy contract.
func (a *ArtMem) Name() string {
	switch {
	case a.cfg.DisableRL && a.cfg.DisableSorting:
		return "ArtMem-base"
	case a.cfg.DisableRL:
		return "ArtMem-heuristic"
	case a.cfg.DisableSorting:
		return "ArtMem-nosort"
	case a.cfg.LatencyReward:
		return "ArtMem-latency"
	case a.cfg.Algorithm == rl.SARSA:
		return "ArtMem-sarsa"
	}
	return "ArtMem"
}

// Interval implements the policy contract.
func (a *ArtMem) Interval() int64 { return a.cfg.TickInterval }

// numStates returns K+2: ratios 0..K plus the no-sample state.
func (a *ArtMem) numStates() int { return a.cfg.K + 2 }

// noSampleState is the dedicated state for empty sampling windows.
func (a *ArtMem) noSampleState() int { return a.cfg.K + 1 }

// SetTelemetry wires the agent to a telemetry set: its resilience and
// decision counters are registered on set.Registry at Attach, and every
// RL period appends one structured event to set.Trace. Must be called
// before Attach; when it is not, Attach creates a private set so the
// counters and trace always exist.
func (a *ArtMem) SetTelemetry(set *telemetry.Set) { a.tel = set }

// Telemetry returns the agent's telemetry set (nil before Attach when
// SetTelemetry was never called).
func (a *ArtMem) Telemetry() *telemetry.Set { return a.tel }

// registerMetrics creates the agent's registry-backed counters. Guarded
// so a re-Attach (same agent, fresh machine) does not double-register.
func (a *ArtMem) registerMetrics() {
	if a.tel == nil {
		a.tel = telemetry.NewSet()
	}
	if a.ctDecisions != nil {
		return
	}
	reg := a.tel.Registry
	a.ctDecisions = reg.Counter("artmem_decisions_total",
		"RL decision periods elapsed (one Tick of Algorithm 1 each).")
	a.ctRetries = reg.Counter("artmem_migration_retries_total",
		"MovePage retries after transient busy failures.")
	a.ctSkips = reg.Counter("artmem_migration_skips_total",
		"Migration candidates abandoned after retries were exhausted.")
	a.ctRollbacks = reg.Counter("artmem_migration_rollbacks_total",
		"Demotions undone because the paired promotion failed permanently.")
	a.ctTierFullStops = reg.Counter("artmem_tier_full_stops_total",
		"Migration periods cut short because the slow tier was full.")
	a.ctDegradedTicks = reg.Counter("artmem_degraded_ticks_total",
		"Decision periods spent in the heuristic fallback.")
	a.ctDegradedIn = reg.Counter("artmem_degraded_entries_total",
		"Transitions into the heuristic fallback mode.")
	a.ctCoolings = reg.Counter("artmem_cooling_resets_total",
		"EMA cooling events (each resets the hotness threshold).")
}

// Attach implements the policy contract.
func (a *ArtMem) Attach(m *memsim.Machine) { a.AttachEnv(m) }

// AttachEnv binds the agent to an arbitrary machine surface — a whole
// machine or a tenant-scoped view (tenancy.TenantView), which is how
// the multi-tenant control plane runs one independent agent per tenant
// (implements policies.EnvPolicy).
func (a *ArtMem) AttachEnv(m memsim.Env) {
	a.registerMetrics()
	a.m = m
	a.lists = lru.New(m.NumPages())
	m.SetAllocHook(func(p memsim.PageID, t memsim.TierID) {
		a.lists.PushHead(lru.ActiveOf(t), p)
	})
	a.sampler = pebs.New(pebs.Config{
		Period:       a.cfg.SamplePeriod,
		RingSize:     64 * 1024,
		SampleCostNs: 20,
		Charge:       m.ChargeBackground,
	})
	if fi, ok := m.FaultInjector().(pebs.Injector); ok {
		// A chaos injector installed on the machine also perturbs the
		// sampling path when it implements the pebs hooks.
		a.sampler.SetInjector(fi)
	}
	m.SetSampler(a.sampler)
	if pt := a.tel.PageTrace; pt != nil {
		// Page-lifecycle tracing: journal allocation, sampling, LRU,
		// verdict, and migration events for the trace's hash-sampled page
		// subset. Each hook costs one branch for unsampled pages.
		m.SetPageTrace(pt)
		a.sampler.SetPageTrace(pt)
		a.lists.SetTransitionHook(func(p memsim.PageID, from, to lru.ListID) {
			if !pt.Sampled(uint64(p)) {
				return
			}
			pt.Append(telemetry.PageEvent{
				TimeNs: m.Now(),
				Page:   uint64(p),
				Kind:   telemetry.PageKindLRU,
				From:   from.String(),
				To:     to.String(),
			})
		})
	}
	a.hist = ema.New(m.NumPages(), a.cfg.CoolingSamples)
	a.scanQuota = m.NumPages()/4 + 1

	rngSeed := a.cfg.Seed ^ 0xa57a57
	migCfg := rl.Config{
		States: a.numStates(), Actions: len(a.cfg.MigrationPages),
		Alpha: a.cfg.Alpha, Gamma: a.cfg.Gamma, Epsilon: a.cfg.Epsilon,
		Algorithm: a.cfg.Algorithm,
	}
	thrCfg := migCfg
	thrCfg.Actions = len(a.cfg.ThresholdDeltas)
	a.qMig = rl.NewTable(migCfg, dist.NewRNG(rngSeed))
	a.qThr = rl.NewTable(thrCfg, dist.NewRNG(rngSeed+1))

	// Algorithm 1 line 1–2: the program loads from DRAM, so start in
	// state k with Q(k, no-migration) = 1 and τ₋₁ = k.
	a.qMig.SetQ(a.cfg.K, 0, 1)
	if a.cfg.PretrainedMig != nil {
		if err := a.qMig.CopyQFrom(a.cfg.PretrainedMig); err != nil {
			panic(err)
		}
	}
	if a.cfg.PretrainedThr != nil {
		if err := a.qThr.CopyQFrom(a.cfg.PretrainedThr); err != nil {
			panic(err)
		}
	}
	a.state = a.cfg.K
	a.actMig, a.actThr = 0, a.thresholdZeroAction()

	a.threshold = a.capacityThreshold()
}

// thresholdZeroAction returns the index of the 0 delta.
func (a *ArtMem) thresholdZeroAction() int {
	for i, d := range a.cfg.ThresholdDeltas {
		if d == 0 {
			return i
		}
	}
	return len(a.cfg.ThresholdDeltas) / 2
}

// capacityThreshold is the MEMTIS-style starting threshold, floored at
// the minimum (§5: "Heuristic Minimum Hotness Threshold").
func (a *ArtMem) capacityThreshold() uint32 {
	t := a.hist.CapacityThreshold(a.m.CapacityPages(memsim.Fast))
	if t < a.cfg.MinThreshold {
		t = a.cfg.MinThreshold
	}
	return t
}

// Threshold returns the current hotness threshold (for experiments).
func (a *ArtMem) Threshold() uint32 { return a.threshold }

// Decisions returns the number of RL periods elapsed. Safe to call
// concurrently with a running System (the count is a registry-backed
// atomic counter).
func (a *ArtMem) Decisions() uint64 { return a.ctDecisions.Value() }

// RLOverheadNs returns the cumulative virtual CPU time attributed to
// Q-table computation (§6.4 reports at most 0.07% of a CPU).
func (a *ArtMem) RLOverheadNs() float64 { return a.rlNanos }

// SamplingOverheadNs returns the virtual CPU time attributed to PEBS
// sampling: recorded samples times the per-sample processing cost (§6.4
// reports sampling at most 3% of a CPU).
func (a *ArtMem) SamplingOverheadNs() float64 {
	if a.sampler == nil {
		return 0
	}
	return float64(a.sampler.Total()) * 20
}

// Degraded reports whether the agent is currently in the heuristic
// fallback mode (sampling signal dry for DegradeAfter periods).
func (a *ArtMem) Degraded() bool { return a.degraded }

// FaultStats returns a snapshot of the agent's resilience counters.
// The counters live on the telemetry registry; this accessor keeps the
// experiment-facing surface. Safe to call concurrently with a running
// System.
func (a *ArtMem) FaultStats() FaultStats {
	return FaultStats{
		Retries:         a.ctRetries.Value(),
		SkippedPages:    a.ctSkips.Value(),
		Rollbacks:       a.ctRollbacks.Value(),
		TierFullStops:   a.ctTierFullStops.Value(),
		DegradedTicks:   a.ctDegradedTicks.Value(),
		DegradedEntries: a.ctDegradedIn.Value(),
	}
}

// Sampler returns the agent's PEBS sampler (for stats endpoints).
func (a *ArtMem) Sampler() *pebs.Sampler { return a.sampler }

// QTables returns the two live Q-tables (migration-number, threshold).
// Used by the robustness study to transplant trained tables (§6.3.6).
func (a *ArtMem) QTables() (mig, thr *rl.Table) { return a.qMig, a.qThr }

// LoadQTables copies pre-trained Q values into the agent. Must be
// called after Attach. Returns an error on dimension mismatch.
func (a *ArtMem) LoadQTables(mig, thr *rl.Table) error {
	if err := a.qMig.CopyQFrom(mig); err != nil {
		return err
	}
	return a.qThr.CopyQFrom(thr)
}

// observeState computes τᵢ from the sampling window (Equation 1).
func (a *ArtMem) observeState() int {
	fast, slow := a.sampler.WindowCounts()
	a.lastWinFast, a.lastWinSlow = fast, slow
	total := fast + slow
	if total == 0 {
		// All accesses hit in cache or nothing ran: the dedicated state.
		return a.noSampleState()
	}
	tau := int(fast * uint64(a.cfg.K) / total)
	if tau > a.cfg.K {
		tau = a.cfg.K
	}
	return tau
}

// reward computes Equation 2 for the transition prev → cur, or the
// latency-based alternative of §6.3.4.
func (a *ArtMem) reward(prev, cur int) float64 {
	lambda := 0.0
	if a.migrated {
		lambda = 1
	}
	if a.cfg.LatencyReward {
		// Approximate latency from the window's access mix, smoothed —
		// pending-request estimation reacts more slowly than the direct
		// ratio, giving the delayed adjustments seen in Figure 12.
		fast, slow := float64(a.lastWinFast), float64(a.lastWinSlow)
		tot := fast + slow
		lat := 0.0
		if tot > 0 {
			cfg := a.m.Config()
			lat = (fast*cfg.Fast.LatencyNs + slow*cfg.Slow.LatencyNs) / tot
		} else {
			lat = a.m.Config().Fast.LatencyNs
		}
		a.latEMA = 0.6*a.latEMA + 0.4*lat
		cfg := a.m.Config()
		// Map [fastLat, slowLat] onto the same 0..K scale, inverted so
		// lower latency scores higher.
		span := cfg.Slow.LatencyNs - cfg.Fast.LatencyNs
		score := float64(a.cfg.K) * (cfg.Slow.LatencyNs - a.latEMA) / span
		prevScore := float64(prev)
		a.m.ChargeBackground(800) // extra collection cost (§6.3.4)
		return score - a.cfg.Beta + lambda*(score-prevScore)
	}
	ti, tprev := float64(cur), float64(prev)
	if cur == a.noSampleState() {
		// No sampled events: treat as fully cache-served (best case).
		ti = float64(a.cfg.K)
	}
	if prev == a.noSampleState() {
		tprev = float64(a.cfg.K)
	}
	return ti - a.cfg.Beta + lambda*(ti-tprev)
}

// PumpSamples performs the sampling thread's work (§4.4): drain the
// PEBS ring buffer into the EMA distribution ②, sort sampled pages by
// recency ③, run second-chance aging, and handle cooling. The harness's
// Tick calls it inline; the online runtime (System) calls it from a
// dedicated sampling goroutine between migration periods.
func (a *ArtMem) PumpSamples() {
	cooled := false
	drained := a.sampler.Pending()
	if t := a.cfg.TargetSamplesPerPeriod; t > 0 {
		// Dynamic period adjustment bounds the sampling overhead (§6.4).
		switch period := a.sampler.Period(); {
		case drained > 2*t && period < a.cfg.SamplePeriod*8:
			a.sampler.SetPeriod(period * 2)
		case drained < t/2 && period > a.cfg.SamplePeriod:
			a.sampler.SetPeriod(period / 2)
		}
	}
	a.sampler.Drain(func(s pebs.Sample) {
		if a.hist.Record(s.Page) {
			cooled = true
		}
		if !a.cfg.DisableSorting {
			// Page sorting: a sampled access is evidence of recency.
			a.lists.PushHead(lru.ActiveOf(a.m.TierOf(s.Page)), s.Page)
		}
	})
	// Second-chance aging keeps the inactive lists meaningful.
	a.lists.Age(memsim.Fast, a.scanQuota, a.m.TestAndClearAccessed)
	a.lists.Age(memsim.Slow, a.scanQuota, a.m.TestAndClearAccessed)
	a.m.ChargeBackground(float64(4*a.scanQuota) * 15)

	if cooled {
		// Reset the threshold after each cooling (§4.3).
		a.threshold = a.capacityThreshold()
		a.ctCoolings.Inc()
		a.tel.Trace.Append(telemetry.Event{
			TimeNs:    a.m.Now(),
			Kind:      telemetry.KindCooling,
			Threshold: a.threshold,
			Degraded:  a.degraded,
			Detail:    "EMA cooled, threshold reset",
		})
	}
}

// heuristicTick runs the fallback policy: capacity-derived threshold and
// a fixed mid-ladder migration number — the same strategy as the
// DisableRL ablation, reused as the degraded mode. state is the
// observed state for the decision-trace record (the heuristic itself
// ignores it).
func (a *ArtMem) heuristicTick(state int) {
	a.threshold = a.capacityThreshold()
	mid := len(a.cfg.MigrationPages) / 2
	quota := a.cfg.MigrationPages[mid]
	a.lastMigrated = a.migrate(quota)
	a.migrated = a.lastMigrated > 0
	a.traceDecision(state, 0, quota, 0)
}

// traceDecision appends the period's structured event to the decision
// trace — the record the paper's §6 measurements (quota, Q evolution,
// hit ratio) are reconstructed from.
func (a *ArtMem) traceDecision(state int, reward float64, quota, thrDelta int) {
	a.tel.Trace.Append(telemetry.Event{
		TimeNs:         a.m.Now(),
		Kind:           telemetry.KindDecision,
		State:          state,
		Reward:         reward,
		Quota:          quota,
		ThresholdDelta: thrDelta,
		Threshold:      a.threshold,
		Attempted:      a.lastAttempted,
		Promoted:       a.lastMigrated,
		Failed:         a.lastFailed,
		RolledBack:     a.lastRolled,
		WinFast:        a.lastWinFast,
		WinSlow:        a.lastWinSlow,
		Degraded:       a.degraded,
	})
}

// Tick implements the policy contract: one iteration of Algorithm 1.
func (a *ArtMem) Tick(now int64) {
	a.ctDecisions.Inc()
	// ① Drain sampling data and maintain the distribution and lists.
	a.PumpSamples()

	// ⑤ Observe the new state (also consumed by the heuristic paths for
	// the decision trace; it has no RNG and no behavioural effect there).
	cur := a.observeState()

	if a.cfg.DisableRL {
		// Heuristic ablation: capacity threshold, fixed migration number.
		a.heuristicTick(cur)
		return
	}

	// Graceful degradation: one empty window is a legitimate RL state
	// (the cache absorbed everything), but a long dry spell means the
	// sampling substrate itself is unhealthy — the no-sample reward would
	// keep scoring "best case" while slow-tier traffic goes unobserved.
	// After DegradeAfter consecutive empty windows, fall back to the
	// heuristic policy; re-engage RL on the first window with samples.
	if cur == a.noSampleState() {
		a.noSampleStreak++
	} else {
		a.noSampleStreak = 0
	}
	reengaged := false
	if a.degraded {
		if cur == a.noSampleState() {
			a.ctDegradedTicks.Inc()
			a.heuristicTick(cur)
			return
		}
		a.degraded = false
		reengaged = true
		a.tel.Trace.Append(telemetry.Event{
			TimeNs: a.m.Now(), Kind: telemetry.KindReengaged, State: cur,
			Detail: "sampling signal returned, RL re-engaged",
		})
	} else if a.cfg.DegradeAfter > 0 && a.noSampleStreak >= a.cfg.DegradeAfter {
		a.degraded = true
		a.ctDegradedIn.Inc()
		a.ctDegradedTicks.Inc()
		a.tel.Trace.Append(telemetry.Event{
			TimeNs: a.m.Now(), Kind: telemetry.KindDegraded, State: cur, Degraded: true,
			Detail: fmt.Sprintf("%d consecutive empty sampling windows", a.noSampleStreak),
		})
		if a.cfg.Debug != nil {
			a.cfg.Debug("tick %d: entering degraded mode after %d empty windows",
				a.Decisions(), a.noSampleStreak)
		}
		a.heuristicTick(cur)
		return
	}

	nextMig := a.qMig.Choose(cur)
	nextThr := a.qThr.Choose(cur)
	var r float64
	if reengaged {
		// No reward bridges the degraded gap: the recorded actions were
		// not what steered those periods (the heuristic was). Restart the
		// trajectory from the fresh observation.
		a.state = cur
		a.migrated = false
	} else {
		r = a.reward(a.state, cur)
		a.qMig.Update(a.state, a.actMig, r, cur, nextMig)
		a.qThr.Update(a.state, a.actThr, r, cur, nextThr)
	}
	a.rlNanos += 120 // two table updates + two selections (§6.4)
	a.m.ChargeBackground(120)

	// Apply the threshold action with the minimum-threshold floor (§5)
	// and a generous ceiling that keeps exploration from walking the
	// threshold beyond any page's plausible count.
	delta := a.cfg.ThresholdDeltas[nextThr]
	nt := int64(a.threshold) + int64(delta)
	if nt < int64(a.cfg.MinThreshold) {
		nt = int64(a.cfg.MinThreshold)
	}
	if max := int64(a.cfg.MinThreshold) * 16; nt > max {
		nt = max
	}
	a.threshold = uint32(nt)

	// Apply the migration action.
	a.lastMigrated = a.migrate(a.cfg.MigrationPages[nextMig])
	a.migrated = a.lastMigrated > 0
	a.traceDecision(cur, r, a.cfg.MigrationPages[nextMig], delta)

	if a.cfg.Debug != nil {
		a.cfg.Debug("tick %d: state=%d r=%.2f thr=%d act=(mig %d pages, thr %+d) promoted=%d win=%d/%d slowActive=%d",
			a.Decisions(), cur, r, a.threshold, a.cfg.MigrationPages[nextMig],
			delta, a.lastMigrated, a.lastWinFast, a.lastWinSlow,
			a.lists.Len(lru.SlowActive))
	}

	a.state = cur
	a.actMig, a.actThr = nextMig, nextThr
}

// migrate executes one migration period: promote up to want qualifying
// pages (count ≥ threshold) from the head of the slow tier's active
// list, demoting from the fast inactive tail first when space is needed
// (§4.4's migration thread). It returns the number of pages promoted.
func (a *ArtMem) migrate(want int) int {
	a.lastAttempted, a.lastFailed, a.lastRolled = 0, 0, 0
	if want == 0 {
		return 0
	}
	m := a.m
	// Collect promotion candidates from the head of the slow tier's
	// active list *in order* (§4.4): recency ranks first, and the
	// frequency threshold gates which of the recent pages qualify. The
	// walk is depth-limited — pages deep in the list are not recent, and
	// scavenging them would promote stale frequency (the exact failure
	// ArtMem's sorting is designed to avoid).
	cands := make([]memsim.PageID, 0, want)
	depth := want*4 + 64
	for p := a.lists.Head(lru.SlowActive); p != memsim.NoPage && len(cands) < want && depth > 0; p = a.lists.Next(p) {
		depth--
		count := a.hist.Count(p)
		qualified := count >= a.threshold
		if qualified {
			cands = append(cands, p)
		}
		a.tracePageVerdict(p, count, qualified)
	}
	a.lastAttempted = len(cands)
	promoted := 0
	for _, p := range cands {
		// Each candidate is one transaction: (optionally) demote a victim
		// to make room, then promote. List updates commit only after the
		// corresponding MovePage succeeds, and a demotion whose paired
		// promotion fails permanently is rolled back (Nomad-style
		// copy-then-commit), so list and tier state never diverge.
		victim := memsim.NoPage
		victimList := lru.None
		if m.FreePages(memsim.Fast) == 0 {
			// Demotion starts from the tail of the fast inactive list.
			victim = a.lists.Tail(lru.FastInactive)
			if victim == memsim.NoPage {
				victim = a.lists.Tail(lru.FastActive)
			}
			if victim == memsim.NoPage {
				break
			}
			// Recency decides the victim (tail of the inactive list): a
			// page that has not been referenced recently is demotable even
			// if its accumulated EMA count is still high — stale frequency
			// is exactly what the paper's page sorting corrects for (§4.3).
			// Only an *actively hot* victim (still on the active list with
			// a count above the incoming page's) blocks the swap.
			victimList = a.lists.ListOf(victim)
			if victimList == lru.FastActive &&
				a.hist.Count(victim) > a.hist.Count(p) {
				break
			}
			switch err := a.moveWithRetry(victim, memsim.Slow); {
			case err == nil:
				a.insertAfterMigration(victim, memsim.Slow, victimList == lru.FastActive)
			case errors.Is(err, memsim.ErrTierFull):
				// The slow tier has no room: no demotion can succeed this
				// period, so stop instead of hammering a full tier.
				a.ctTierFullStops.Inc()
				a.tel.Trace.Append(telemetry.Event{
					TimeNs: m.Now(), Kind: telemetry.KindFault,
					Promoted: promoted, Degraded: a.degraded,
					Detail: "slow tier full, migration period stopped",
				})
				return promoted
			default:
				// A transient failure outlived the retries: skip this
				// candidate and continue (the victim stays resident).
				a.ctSkips.Inc()
				a.lastFailed++
				a.tracePageOutcome(p, telemetry.OutcomeSkipped,
					"victim demotion retries exhausted")
				continue
			}
		}
		wasActive := a.lists.ListOf(p) == lru.SlowActive
		if err := a.moveWithRetry(p, memsim.Fast); err != nil {
			a.ctSkips.Inc()
			a.lastFailed++
			a.tracePageOutcome(p, telemetry.OutcomeSkipped,
				"promotion retries exhausted")
			if victim != memsim.NoPage {
				// Roll back the demotion performed solely to make room for
				// this promotion: re-promote the victim and restore its
				// list membership, so a failed transaction does not evict
				// resident pages for nothing.
				if a.moveWithRetry(victim, memsim.Fast) == nil {
					a.lists.PushHead(victimList, victim)
					a.ctRollbacks.Inc()
					a.lastRolled++
					a.tracePageOutcome(victim, telemetry.OutcomeRolledBack,
						"paired promotion failed, demotion undone")
				}
			}
			continue
		}
		a.insertAfterMigration(p, memsim.Fast, wasActive)
		promoted++
	}
	return promoted
}

// tracePageVerdict journals the policy's promotion verdict for a
// sampled candidate: the hotness comparison that accepted or rejected
// it, with the numbers behind it.
func (a *ArtMem) tracePageVerdict(p memsim.PageID, count uint32, qualified bool) {
	pt := a.tel.PageTrace
	if !pt.Sampled(uint64(p)) {
		return
	}
	outcome, op := telemetry.OutcomeRejected, "<"
	if qualified {
		outcome, op = telemetry.OutcomeQualified, ">="
	}
	pt.Append(telemetry.PageEvent{
		TimeNs:    a.m.Now(),
		Page:      uint64(p),
		Kind:      telemetry.PageKindVerdict,
		Tier:      a.m.TierOf(p).String(),
		Count:     count,
		Threshold: a.threshold,
		Outcome:   outcome,
		Reason:    fmt.Sprintf("count %d %s threshold %d", count, op, a.threshold),
	})
}

// tracePageOutcome journals a policy-level migration outcome (skip,
// rollback) for a sampled page. The machine journals the per-attempt
// outcomes (settled/busy/tier_full) itself.
func (a *ArtMem) tracePageOutcome(p memsim.PageID, outcome, reason string) {
	pt := a.tel.PageTrace
	if !pt.Sampled(uint64(p)) {
		return
	}
	pt.Append(telemetry.PageEvent{
		TimeNs:  a.m.Now(),
		Page:    uint64(p),
		Kind:    telemetry.PageKindMigration,
		Tier:    a.m.TierOf(p).String(),
		Outcome: outcome,
		Reason:  reason,
	})
}

// moveWithRetry attempts MovePage(p, dst), retrying transient busy
// failures (memsim.ErrMigrationBusy) with capped exponential backoff.
// Each retry charges the backoff to background CPU time — the migration
// thread waiting out a busy page. Non-transient errors (ErrTierFull,
// ErrNotAllocated) return immediately; after the retry budget is
// exhausted the last busy error is returned for the caller to skip on.
func (a *ArtMem) moveWithRetry(p memsim.PageID, dst memsim.TierID) error {
	backoff := a.cfg.MigrationBackoffNs
	maxBackoff := backoff * 8
	for attempt := 0; ; attempt++ {
		err := a.m.MovePage(p, dst)
		if err == nil || !errors.Is(err, memsim.ErrMigrationBusy) {
			return err
		}
		if attempt >= a.cfg.MigrationRetries {
			return err
		}
		a.ctRetries.Inc()
		a.m.ChargeBackground(backoff)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// insertAfterMigration places a migrated page on the destination tier's
// lists. ArtMem's aggressive policy inserts promoted pages at the head
// of the active list regardless of prior status; the DisableSorting
// ablation preserves status like prior systems (§4.3).
func (a *ArtMem) insertAfterMigration(p memsim.PageID, dst memsim.TierID, wasActive bool) {
	if a.cfg.DisableSorting {
		if wasActive {
			a.lists.PushHead(lru.ActiveOf(dst), p)
		} else {
			a.lists.PushHead(lru.InactiveOf(dst), p)
		}
		return
	}
	if dst == memsim.Fast {
		// Always to the head of the fast active list.
		a.lists.PushHead(lru.FastActive, p)
	} else {
		// Demotions keep status (the asymmetry is deliberate: the paper's
		// aggressive insertion concerns promoted pages).
		if wasActive {
			a.lists.PushHead(lru.SlowActive, p)
		} else {
			a.lists.PushHead(lru.SlowInactive, p)
		}
	}
}
