package core

import (
	"encoding/json"
	"net/http"
)

// healthSource abstracts System and MultiSystem for the shared
// /healthz handler: the watchdog Health snapshot plus the daemon's
// graceful-shutdown flag.
type healthSource interface {
	Health() Health
	Draining() bool
}

// healthzStatus is the JSON document served at /healthz. The field set
// is fixed (schema-pinned) so load balancers and the loopback smoke
// can rely on it.
type healthzStatus struct {
	// Status is "ok", "degraded" (the agent fell back to heuristic
	// mode or a worker stalled/panicked), or "draining" (graceful
	// shutdown in progress — served with 503 so balancers stop
	// routing).
	Status string `json:"status"`
	// Degraded and Draining are the raw flags behind Status.
	Degraded bool `json:"degraded"`
	Draining bool `json:"draining"`
	// Liveness detail from the watchdog Health snapshot.
	SamplingBeats  uint64 `json:"sampling_beats"`
	MigrationBeats uint64 `json:"migration_beats"`
	WatchdogStalls uint64 `json:"watchdog_stalls"`
	Panics         uint64 `json:"panics"`
}

// healthzHandler serves GET /healthz from a health source. Draining
// answers 503 (stop routing new work here), everything else 200 — a
// degraded daemon still serves traffic, just on the heuristic
// fallback, and the body says so.
func healthzHandler(s healthSource) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		h := s.Health()
		st := healthzStatus{
			Degraded:       h.Degraded || h.Panics > 0 || h.SamplingStalls+h.MigrationStalls > 0,
			Draining:       s.Draining(),
			SamplingBeats:  h.SamplingBeats,
			MigrationBeats: h.MigrationBeats,
			WatchdogStalls: h.SamplingStalls + h.MigrationStalls,
			Panics:         h.Panics,
		}
		switch {
		case st.Draining:
			st.Status = "draining"
		case st.Degraded:
			st.Status = "degraded"
		default:
			st.Status = "ok"
		}
		w.Header().Set("Content-Type", "application/json")
		if st.Draining {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(st)
	}
}
