module artmem

go 1.22
