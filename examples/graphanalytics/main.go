// Graph analytics under tiered memory: run connected components over a
// power-law graph whose CSR arrays exceed the fast tier, under three
// tiering policies at two DRAM:PM ratios — the scenario from the paper's
// GAP evaluation (§6.2: graph performance "largely depends on data
// locality").
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"

	"artmem/internal/core"
	"artmem/internal/dist"
	"artmem/internal/graph"
	"artmem/internal/harness"
	"artmem/internal/policies"
	"artmem/internal/workloads"
)

func main() {
	// Build a 50k-vertex power-law graph and lay it out across ~256MB of
	// virtual address space (stretched strides; see internal/graph).
	g := graph.GenPowerLaw(dist.NewRNG(7), 50_000, 600_000, false)
	layout := graph.NewLayout(g, 0, 256, 256, 512)
	fmt.Printf("graph: %d vertices, %d edges, %d MB layout\n\n",
		g.NumVertices(), g.NumEdges(), layout.Footprint()>>20)

	newWorkload := func() workloads.Workload {
		run := func(emit func(addr uint64, write bool)) {
			graph.ConnectedComponents(g, layout, emit)
		}
		w := workloads.NewTrace("CC", layout.Footprint(), run)
		return workloads.Limit(workloads.WithInitSweep(w, 0), 6_000_000)
	}

	systems := []struct {
		name string
		mk   func() policies.Policy
	}{
		{"Static", func() policies.Policy { return policies.NewStatic() }},
		{"AutoNUMA", func() policies.Policy { return policies.NewAutoNUMA(policies.FaultConfig{}) }},
		{"MEMTIS", func() policies.Policy { return policies.NewMEMTIS(policies.MEMTISConfig{}) }},
		{"ArtMem", func() policies.Policy { return core.New(core.Config{}) }},
	}

	for _, ratio := range []harness.Ratio{{Fast: 1, Slow: 2}, {Fast: 1, Slow: 8}} {
		fmt.Printf("DRAM:PM = %s\n", ratio)
		var staticNs int64
		for _, sys := range systems {
			r := harness.Run(newWorkload(), sys.mk(), harness.Config{
				PageSize: 32 << 10,
				Ratio:    ratio,
			})
			if sys.name == "Static" {
				staticNs = r.ExecNs
			}
			fmt.Printf("  %-9s exec %7.1f ms  (%.2fx vs static)  ratio %.3f  migrated %5.1f MB\n",
				sys.name, float64(r.ExecNs)/1e6,
				float64(staticNs)/float64(r.ExecNs),
				r.DRAMRatio, float64(r.MigratedBytes)/(1<<20))
		}
		fmt.Println()
	}
}
