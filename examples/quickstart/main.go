// Quickstart: simulate a skewed workload on a two-tier memory system and
// compare ArtMem against a static (no-migration) configuration.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"artmem/internal/core"
	"artmem/internal/harness"
	"artmem/internal/policies"
	"artmem/internal/workloads"
)

func main() {
	// A 512MB footprint with a 64MB hot region sitting in the upper half
	// of the address space — after the init sweep, first-touch allocation
	// leaves the hot region in the slow tier, so placement matters.
	const footprint = 512 << 20
	pattern := &workloads.Pattern{
		Name:      "skewed",
		Footprint: footprint,
		Phases: []workloads.Phase{{
			Name:      "steady",
			Accesses:  8_000_000,
			WriteFrac: 0.2,
			Regions: []workloads.Region{
				{Start: footprint * 3 / 5, Size: 64 << 20, Weight: 0.9},
				{Start: 0, Size: footprint, Weight: 0.1},
			},
		}},
	}

	runCfg := harness.Config{
		PageSize: 32 << 10,                        // scaled 2MB huge pages
		Ratio:    harness.Ratio{Fast: 1, Slow: 3}, // 128MB DRAM, 384MB PM
	}

	newWorkload := func() workloads.Workload {
		return workloads.WithInitSweep(pattern.NewWorkload(1), 0)
	}

	static := harness.Run(newWorkload(), policies.NewStatic(), runCfg)
	artmem := harness.Run(newWorkload(), core.New(core.Config{}), runCfg)

	show := func(r harness.Result) {
		fmt.Printf("%-8s exec %7.1f ms   DRAM ratio %.3f   migrations %6d (%.1f MB)\n",
			r.Policy, float64(r.ExecNs)/1e6, r.DRAMRatio, r.Migrations,
			float64(r.MigratedBytes)/(1<<20))
	}
	fmt.Println("skewed workload, DRAM:PM = 1:3")
	show(static)
	show(artmem)
	fmt.Printf("\nArtMem speedup over static placement: %.2fx\n",
		float64(static.ExecNs)/float64(artmem.ExecNs))
}
