// Mixed concurrent workloads on the multi-tenant ArtMem runtime: SSSP
// and XSBench run as two tenants — two memcg analogues — of one
// core.MultiSystem. Each tenant gets its own RL agent attached to a
// tenant-scoped machine view, the fast tier is partitioned by the
// arbiter's weighted quotas, and admission control meters both tenants'
// promotion traffic; the shared background threads (§4.4) sample and
// migrate for both. The periodic report shows each tenant's hit ratio
// and fast-tier occupancy converging under its own agent.
//
//	go run ./examples/mixedworkload
package main

import (
	"fmt"
	"time"

	"artmem/internal/core"
	"artmem/internal/memsim"
	"artmem/internal/tenancy"
	"artmem/internal/workloads"
)

func main() {
	prof := workloads.Profile{
		Div:             256,
		AppAccesses:     3_000_000,
		PatternAccesses: 3_000_000,
		Seed:            1,
	}
	names := []string{"SSSP", "XSBench"}
	loads := make([]workloads.Workload, len(names))
	offsets := make([]uint64, len(names))
	tenants := make([]core.TenantConfig, len(names))
	var foot int64
	for i, name := range names {
		spec, err := workloads.ByName(name)
		if err != nil {
			panic(err)
		}
		loads[i] = spec.New(prof)
		defer loads[i].Close()
		// Each tenant's addresses land in its own region of the shared
		// machine, as two processes would.
		offsets[i] = uint64(foot)
		foot += loads[i].FootprintBytes()
		tenants[i] = core.TenantConfig{
			Name:   name,
			Weight: int(loads[i].FootprintBytes() / prof.PageSize()),
			Policy: core.Config{Seed: prof.Seed + uint64(i)},
		}
	}

	mcfg := memsim.DefaultConfig(foot, foot/3, prof.PageSize())
	sys := core.NewMultiSystem(core.MultiSystemConfig{
		Machine: mcfg,
		Tenants: tenants,
		Arbiter: tenancy.ArbiterConfig{
			Mode:      tenancy.ModeDynamic,
			Admission: true,
		},
		SamplingInterval:  time.Millisecond,
		MigrationInterval: 5 * time.Millisecond,
	})
	sys.Start()
	defer sys.Stop()

	fmt.Printf("tenants %s+%s: %d MB footprint, %d MB DRAM, arbiter %s\n\n",
		names[0], names[1], foot>>20,
		int64(mcfg.Fast.CapacityPages)*mcfg.PageSize>>20,
		sys.Plane().Arbiter().Mode())
	fmt.Println("wall time   tenant    accesses   hit ratio   fast pages   quota   denied")

	start := time.Now()
	lastReport := start
	report := func() {
		rep := sys.TenantsReport()
		for _, t := range rep.Tenants {
			fmt.Printf("%8s   %-8s %9d       %.3f      %7d   %5d   %6d\n",
				time.Since(start).Round(100*time.Millisecond), t.Name,
				t.FastAccesses+t.SlowAccesses, t.HitRatio,
				t.FastPages, t.QuotaPages, t.AdmissionDenials)
		}
	}

	// Replay both tenants round-robin, a batch at a time, until both
	// traces end.
	done := make([]bool, len(names))
	live := len(names)
	for turn := 0; live > 0; turn = (turn + 1) % len(names) {
		if done[turn] {
			continue
		}
		batch, ok := loads[turn].Next()
		if !ok {
			done[turn] = true
			live--
			continue
		}
		addrs := make([]uint64, len(batch))
		writes := make([]bool, len(batch))
		for i, a := range batch {
			addrs[i] = a.Addr + offsets[turn]
			writes[i] = a.Write
		}
		sys.AccessBatch(turn, addrs, writes)
		if time.Since(lastReport) >= 200*time.Millisecond {
			report()
			lastReport = time.Now()
		}
	}

	c := sys.Counters()
	fmt.Printf("\nfinished: %.1f ms virtual time, overall DRAM ratio %.3f, %d migrations\n",
		float64(sys.Now())/1e6, c.DRAMRatio(), c.Migrations)
	report()
}
