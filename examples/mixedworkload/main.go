// Mixed concurrent workloads on the online ArtMem runtime: SSSP and
// XSBench run together against one tiered memory system, driven through
// core.System's background sampling and migration threads — the paper's
// §6.3.10 scenario ("dynamic and complex access patterns by running
// multiple workloads concurrently") on the §4.4 thread architecture.
//
//	go run ./examples/mixedworkload
package main

import (
	"fmt"
	"time"

	"artmem/internal/core"
	"artmem/internal/memsim"
	"artmem/internal/workloads"
)

func main() {
	prof := workloads.Profile{
		Div:             256,
		AppAccesses:     3_000_000,
		PatternAccesses: 3_000_000,
		Seed:            1,
	}
	mixSpec, err := workloads.ByName("SSSP+XSBench")
	if err != nil {
		panic(err)
	}
	mix := mixSpec.New(prof)
	defer mix.Close()

	mcfg := memsim.DefaultConfig(mix.FootprintBytes(),
		mix.FootprintBytes()/3, prof.PageSize())
	sys := core.NewSystem(core.SystemConfig{
		Machine:           mcfg,
		Policy:            core.Config{},
		SamplingInterval:  time.Millisecond,
		MigrationInterval: 5 * time.Millisecond,
	})
	sys.Start()
	defer sys.Stop()

	fmt.Printf("mixed workload %s: %d MB footprint, %d MB DRAM\n\n",
		mix.Name(), mix.FootprintBytes()>>20,
		int64(mcfg.Fast.CapacityPages)*mcfg.PageSize>>20)
	fmt.Println("wall time   accesses     DRAM ratio   migrations   RL decisions")

	var prev memsim.Counters
	start := time.Now()
	lastReport := start
	for {
		batch, ok := mix.Next()
		if !ok {
			break
		}
		for _, a := range batch {
			sys.Access(a.Addr, a.Write)
		}
		if time.Since(lastReport) >= 200*time.Millisecond {
			c := sys.Counters()
			df := c.FastAccesses - prev.FastAccesses
			ds := c.SlowAccesses - prev.SlowAccesses
			ratio := 0.0
			if df+ds > 0 {
				ratio = float64(df) / float64(df+ds)
			}
			fmt.Printf("%8s   %9d        %.3f      %7d        %5d\n",
				time.Since(start).Round(100*time.Millisecond),
				c.FastAccesses+c.SlowAccesses+c.CacheHits,
				ratio, c.Migrations, sys.Policy().Decisions())
			prev = c
			lastReport = time.Now()
		}
	}

	c := sys.Counters()
	fmt.Printf("\nfinished: %.1f ms virtual time, overall DRAM ratio %.3f, %d migrations\n",
		float64(sys.Now())/1e6, c.DRAMRatio(), c.Migrations)
}
