// Custom tiering policy: the policy framework is open — anything
// implementing the four-method Policy contract can be benchmarked
// against the built-in systems. This example implements a simple
// "probabilistic promotion" policy (promote a slow page on a sampled
// access with probability p, demote from the cold tail when full) and
// races it against ArtMem and Static on pattern S3. It also shows the
// paper's §6.3.4 customization hook: ArtMem with the latency-based
// reward instead of the DRAM-access-ratio reward.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"

	"artmem/internal/core"
	"artmem/internal/dist"
	"artmem/internal/harness"
	"artmem/internal/lru"
	"artmem/internal/memsim"
	"artmem/internal/pebs"
	"artmem/internal/policies"
	"artmem/internal/workloads"
)

// coinFlip promotes sampled slow-tier pages with fixed probability — a
// deliberately naive baseline that demonstrates the Policy contract.
type coinFlip struct {
	m       *memsim.Machine
	lists   *lru.PageLists
	sampler *pebs.Sampler
	rng     *dist.RNG
	prob    float64
}

func newCoinFlip(prob float64) *coinFlip {
	return &coinFlip{rng: dist.NewRNG(42), prob: prob}
}

func (c *coinFlip) Name() string    { return fmt.Sprintf("CoinFlip(%.2f)", c.prob) }
func (c *coinFlip) Interval() int64 { return policies.DefaultTickInterval }

func (c *coinFlip) Attach(m *memsim.Machine) {
	c.m = m
	c.lists = lru.New(m.NumPages())
	m.SetAllocHook(func(p memsim.PageID, t memsim.TierID) {
		c.lists.PushHead(lru.ActiveOf(t), p)
	})
	c.sampler = pebs.New(pebs.Config{Period: 10, Charge: m.ChargeBackground,
		SampleCostNs: 20})
	m.SetSampler(c.sampler)
}

func (c *coinFlip) Tick(now int64) {
	// Age both tiers so the inactive tail is a sane demotion victim pool.
	c.lists.Age(memsim.Fast, c.m.NumPages()/4, c.m.TestAndClearAccessed)
	c.lists.Age(memsim.Slow, c.m.NumPages()/4, c.m.TestAndClearAccessed)
	c.sampler.Drain(func(s pebs.Sample) {
		if s.Tier != memsim.Slow || c.rng.Float64() >= c.prob {
			return
		}
		if c.m.FreePages(memsim.Fast) == 0 {
			victim := c.lists.Tail(lru.FastInactive)
			if victim == memsim.NoPage {
				return
			}
			if c.m.MovePage(victim, memsim.Slow) != nil {
				return
			}
			c.lists.PushHead(lru.SlowInactive, victim)
		}
		if c.m.MovePage(s.Page, memsim.Fast) == nil {
			c.lists.PushHead(lru.FastActive, s.Page)
		}
	})
}

func main() {
	prof := workloads.Profile{Div: 256, PatternAccesses: 6_000_000, Seed: 1}
	spec, err := workloads.ByName("S3")
	if err != nil {
		panic(err)
	}
	cfg := harness.Config{PageSize: prof.PageSize(), Ratio: harness.Ratio{Fast: 1, Slow: 2}}

	contestants := []policies.Policy{
		policies.NewStatic(),
		newCoinFlip(0.05),
		core.New(core.Config{LatencyReward: true}), // §6.3.4 customization
		core.New(core.Config{}),
	}
	fmt.Println("pattern S3, DRAM:PM = 1:2")
	var staticNs int64
	for _, pol := range contestants {
		r := harness.Run(spec.New(prof), pol, cfg)
		if staticNs == 0 {
			staticNs = r.ExecNs
		}
		fmt.Printf("%-16s exec %7.1f ms  (%.2fx vs static)  ratio %.3f  migrations %6d\n",
			r.Policy, float64(r.ExecNs)/1e6, float64(staticNs)/float64(r.ExecNs),
			r.DRAMRatio, r.Migrations)
	}
}
