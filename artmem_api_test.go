package artmem_test

import (
	"testing"

	"artmem"
	"artmem/internal/workloads"
)

func quickProfile() artmem.Profile {
	p := workloads.QuickProfile()
	return p
}

func TestSimulateArtMemVsStatic(t *testing.T) {
	opts := artmem.Options{
		Ratio:   artmem.Ratio{Fast: 1, Slow: 2},
		Profile: quickProfile(),
	}
	static, err := artmem.BaselineByName("Static")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := artmem.Simulate("S3", static, opts)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := artmem.Simulate("S3", artmem.NewPolicy(artmem.Config{}), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rs.ExecNs <= 0 || ra.ExecNs <= 0 {
		t.Fatalf("non-positive exec times: %d / %d", rs.ExecNs, ra.ExecNs)
	}
	if ra.Migrations == 0 {
		t.Error("ArtMem never migrated on a hot-in-slow pattern")
	}
	if ra.DRAMRatio <= rs.DRAMRatio {
		t.Errorf("ArtMem ratio %.3f not above static %.3f", ra.DRAMRatio, rs.DRAMRatio)
	}
}

func TestSimulateUnknownWorkload(t *testing.T) {
	if _, err := artmem.Simulate("not-a-workload",
		artmem.NewPolicy(artmem.Config{}), artmem.Options{}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestBaselinesComplete(t *testing.T) {
	names := map[string]bool{}
	for _, f := range artmem.Baselines() {
		names[f.Name] = true
	}
	for _, want := range []string{"Static", "MEMTIS", "AutoTiering", "TPP",
		"AutoNUMA", "Multi-clock", "Nimble", "Tiering-0.8"} {
		if !names[want] {
			t.Errorf("baseline %q missing", want)
		}
	}
	if _, err := artmem.BaselineByName("nope"); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestWorkloadsRegistry(t *testing.T) {
	names := artmem.Workloads()
	if len(names) < 12 {
		t.Fatalf("only %d workloads registered", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate workload %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"YCSB", "CC", "SSSP", "PR", "XSBench",
		"DLRM", "Btree", "Liblinear", "S1", "S2", "S3", "S4"} {
		if !seen[want] {
			t.Errorf("workload %q missing", want)
		}
	}
}

func TestSimulateDefaultsAndSeries(t *testing.T) {
	// Zero-value options must work (default profile is heavier, so use a
	// cheap pattern via the profile override to keep the test fast).
	opts := artmem.Options{Profile: quickProfile(), CollectSeries: true}
	r, err := artmem.Simulate("S1", artmem.NewPolicy(artmem.Config{}), opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio.Fast != 1 || r.Ratio.Slow != 1 {
		t.Errorf("default ratio = %v", r.Ratio)
	}
	if r.MigrationSeries.Len() == 0 {
		t.Error("series not collected")
	}
}
